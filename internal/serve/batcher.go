package serve

import (
	"math"
	"time"

	"pcnn/internal/tensor"
)

// batcherTimer is the flush-deadline timer seam. flushTimer is the
// production implementation; tests inject a hand-fired fake to pin the
// flush-vs-submit interleavings (stale fires, premature fires) without
// wall-clock races.
type batcherTimer interface {
	// arm schedules a fire after d, replacing any earlier schedule.
	arm(d time.Duration)
	// disarm cancels the schedule; ch goes nil so a select never fires.
	disarm()
	// fired acknowledges a receive from ch before the next arm.
	fired()
	// ch is the fire channel; nil while disarmed.
	ch() <-chan time.Time
}

// flushTimer wraps one reusable time.Timer for the batcher's flush
// deadline. The previous implementation allocated a fresh time.NewTimer
// on every submitted request — per-request timer churn on the hot
// admission path; this one Stops, drains and Resets a single timer. C is
// non-nil only while armed; after receiving from C the owner must call
// fired before the next arm.
type flushTimer struct {
	t *time.Timer
	C <-chan time.Time
}

// arm schedules the timer to fire after d (negative d clamps to 0).
func (ft *flushTimer) arm(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if ft.t == nil {
		ft.t = time.NewTimer(d)
	} else {
		ft.stopDrain()
		ft.t.Reset(d)
	}
	ft.C = ft.t.C
}

// disarm stops the timer; C goes nil so a pending select never fires.
func (ft *flushTimer) disarm() {
	if ft.t != nil {
		ft.stopDrain()
	}
	ft.C = nil
}

// fired acknowledges a receive from C: the channel is already drained, so
// the next arm must not try to drain it again via a blocked Stop.
func (ft *flushTimer) fired() { ft.C = nil }

// ch implements batcherTimer.
func (ft *flushTimer) ch() <-chan time.Time { return ft.C }

// stopDrain is the correct stop/drain sequence for a timer that may have
// fired but not been received from.
func (ft *flushTimer) stopDrain() {
	if !ft.t.Stop() {
		select {
		case <-ft.t.C:
		default:
		}
	}
}

// batcher is the coalescing loop: it drains admitted requests into the
// per-archetype priority queues, forms cross-stream batches of up to
// MaxBatch in effective-priority order, and hands them to the worker pool
// when the batch fills or the tightest pending head's slack (deadline −
// Eq 12 prediction) runs out. Backpressure is natural: when every worker
// is busy the flush send blocks, the admission queue fills, and Submit
// starts rejecting.
//
// A timer fire is a *hint*, not a command: the delay it was armed with
// described an older pending set, and requests admitted since (or a level
// change) may have moved the due instant. The loop therefore re-derives
// flushDelay on fire and re-arms instead of flushing when the batch is
// not actually due — the fix for the stale-fire edge where a fire racing
// a submit flushed a batch whose window had not closed.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	defer close(s.flushCh)

	q := &prioQueues{agingMS: s.cfg.AgingMS}
	ft := s.newBatcherTimer()

	for {
		select {
		case r, ok := <-s.submitCh:
			if !ok {
				ft.disarm()
				s.flushAll(q)
				return
			}
			q.push(r)
			// Absorb any burst already admitted before deciding, so batch
			// formation sees the full cross-stream picture rather than one
			// arrival per loop turn.
			s.drainSubmitted(q)
			if s.cfg.ManualFlush {
				continue // only Flush/FlushOne (or close-drain) flushes
			}
			for q.len() >= s.cfg.MaxBatch {
				ft.disarm()
				s.flushNext(q)
			}
			s.rearm(ft, q)
		case done := <-s.flushReqCh:
			// Drain everything already admitted (sitting in the buffered
			// submit channel) first, so a Flush issued after N completed
			// Submits flushes exactly those N.
			s.drainSubmitted(q)
			ft.disarm()
			n := q.len()
			s.flushAll(q)
			done <- n
		case done := <-s.flushOneReqCh:
			s.drainSubmitted(q)
			n := 0
			if q.len() > 0 {
				n = s.flushNext(q)
			}
			if !s.cfg.ManualFlush {
				s.rearm(ft, q)
			}
			done <- n
		case done := <-s.delayReqCh:
			s.drainSubmitted(q)
			if q.len() == 0 {
				done <- math.Inf(1)
			} else {
				done <- s.flushDelayMS(q)
			}
		case <-ft.ch():
			ft.fired()
			if q.len() == 0 {
				continue
			}
			if d := s.flushDelay(q); d > 0 {
				ft.arm(d) // stale fire: the due instant moved; not yet due
				continue
			}
			s.flushNext(q)
			s.rearm(ft, q)
		}
	}
}

// newBatcherTimer returns the injected test timer when one is set, else
// the reusable production timer.
func (s *Server) newBatcherTimer() batcherTimer {
	if s.timerHook != nil {
		return s.timerHook()
	}
	return &flushTimer{}
}

// rearm schedules the next autonomous flush for whatever remains pending,
// or disarms when the queues are empty.
func (s *Server) rearm(ft batcherTimer, q *prioQueues) {
	if q.len() == 0 {
		ft.disarm()
		return
	}
	ft.arm(s.flushDelay(q))
}

// drainSubmitted moves every request buffered in the admission queue into
// the priority bands without blocking.
func (s *Server) drainSubmitted(q *prioQueues) {
	for {
		select {
		case r, ok := <-s.submitCh:
			if !ok {
				return // closed: the main loop's next receive handles exit
			}
			q.push(r)
		default:
			return
		}
	}
}

// flushNext forms and flushes one batch: the top MaxBatch pending
// requests in effective-priority order. It returns the batch size.
func (s *Server) flushNext(q *prioQueues) int {
	batch, promoted := q.take(s.cfg.MaxBatch, s.cfg.Clock())
	if promoted > 0 {
		s.st.promotedAdd(uint64(promoted))
	}
	s.flush(batch)
	return len(batch)
}

// flushAll drains the priority bands completely, one policy-formed batch
// at a time, so an over-full manual backlog (or a close-drain) still
// respects the batch cap and the priority order.
func (s *Server) flushAll(q *prioQueues) {
	for q.len() > 0 {
		s.flushNext(q)
	}
}

// flushDelay returns how much longer the batcher may hold the pending
// batch as a timer duration (≤ 0 means due now).
func (s *Server) flushDelay(q *prioQueues) time.Duration {
	d := s.flushDelayMS(q)
	if d <= 0 {
		return 0
	}
	return time.Duration(d * float64(time.Millisecond))
}

// slackGuardFrac is the batching policy's safety margin as a fraction of
// the predicted completion time. The Eq 12 estimate trails the simulated
// execution by a few percent; flushing exactly at slack zero therefore
// converts that gap into a deadline miss on every boundary flush. Holding
// the batch only while slack exceeds the guard lands responses just
// inside the deadline instead of just outside it.
const slackGuardFrac = 0.1

// flushDelayMS is the batching policy: the tightest remaining slack among
// the band heads — each priced with its own task's deadline against the
// Eq 12 prediction for the batch about to form, less the safety guard —
// additionally capped by the linger window from the oldest arrival, so
// tasks with lazy deadlines (or none at all) still flush promptly.
func (s *Server) flushDelayMS(q *prioQueues) float64 {
	oldest := q.oldest()
	linger := s.cfg.LingerMS - s.sinceMS(oldest.at)
	n := q.len()
	if n > s.cfg.MaxBatch {
		n = s.cfg.MaxBatch
	}
	pred := s.queuePredictMS(s.ctrl.Level(), s.ctrl.Quant(), n)
	guard := slackGuardFrac * pred
	d := linger
	q.heads(func(r *request) {
		if slack := r.task.SlackMS(s.sinceMS(r.at), pred) - guard; slack < d {
			d = slack
		}
	})
	return d
}

// queuePredictMS estimates how long a flush of n requests will take to
// finish at an operating point: any externally-declared worker occupancy,
// plus the batches already in flight ahead of it (spread over the worker
// pool), plus its own predicted execution time.
func (s *Server) queuePredictMS(level int, quant bool, n int) float64 {
	ahead := s.busyMS() + float64(s.inflight.Load())*s.predictMS(level, quant, s.cfg.MaxBatch)/float64(s.cfg.Workers)
	return ahead + s.predictMS(level, quant, n)
}

// flush hands one batch to the worker pool, escalating the degradation
// ladder first if the tightest request's slack has gone negative
// (graceful degradation instead of dropping) — the quantization rung
// before deeper perforation, when it is armed and not vetoed.
func (s *Server) flush(reqs []*request) {
	n := len(reqs)
	for _, r := range reqs {
		r.tr.Mark("coalesce")
	}
	level, quant := s.ctrl.Level(), s.ctrl.Quant()
	if !s.cfg.DisableDegrade {
		level, quant = s.ctrl.escalate(func(l int, q bool) bool {
			pred := s.queuePredictMS(l, q, n)
			guard := slackGuardFrac * pred
			for _, r := range reqs {
				if r.task.SlackMS(s.sinceMS(r.at), pred) < guard {
					return false
				}
			}
			return true
		})
	}
	for _, r := range reqs {
		r.tr.Mark("escalate")
	}
	s.inflight.Add(1)
	s.flushCh <- &batchJob{reqs: reqs, level: level, quant: quant}
}

// worker executes flushed batches until the batcher closes the channel.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.flushCh {
		s.runBatch(job)
	}
}

// gatherInputs assembles the batch input tensor when every request
// carries a sample. It returns (nil, false) when no request carries one
// (a deliberate simulation-only batch), and (nil, true) — a *demotion* —
// when samples were present but unusable: some requests missing theirs,
// or heterogeneous shapes that cannot stack into one N×C×H×W tensor.
// Demotions silently discard the operator's classification work, so the
// caller counts and surfaces them.
func gatherInputs(reqs []*request) (batch *tensor.Tensor, demoted bool) {
	withInput := 0
	for _, r := range reqs {
		if r.input != nil {
			withInput++
		}
	}
	if withInput == 0 {
		return nil, false
	}
	if withInput < len(reqs) {
		return nil, true // mixed nil/sample batch cannot classify everyone
	}
	shape := reqs[0].input.Shape()
	per := reqs[0].input.Len()
	for _, r := range reqs {
		if r.input.Len() != per {
			return nil, true // heterogeneous sample shapes
		}
	}
	batch = tensor.New(append([]int{len(reqs)}, shape...)...)
	for i, r := range reqs {
		copy(batch.Data[i*per:(i+1)*per], r.input.Data)
	}
	return batch, false
}

// runBatch executes one batch, resolves its futures, and feeds the
// entropy/slack signals back into the controller. Execution runs through
// the hardening stack — circuit breaker, per-attempt timeout, bounded
// retry with backoff — and only this worker resolves the batch's futures,
// which is what keeps drain-on-Close exact: Close waits for the workers,
// and no orphaned attempt can resolve anything after that.
func (s *Server) runBatch(job *batchJob) {
	n := len(job.reqs)
	start := s.stamp()
	inputs, demoted := gatherInputs(job.reqs)
	if demoted {
		s.st.demotedInc()
	}
	res, err := s.executeBatch(job.level, job.quant, n, inputs)
	if s.cfg.Pace > 0 && err == nil {
		time.Sleep(time.Duration(res.TimeMS * s.cfg.Pace * float64(time.Millisecond)))
	}
	s.inflight.Add(-1)
	if err != nil {
		s.st.failBatch(n)
		for _, r := range job.reqs {
			r.fut.ch <- outcome{err: err}
			s.finishTrace(r, n, job.level, demoted, err)
		}
		return
	}
	// The batch-size histogram moves with the executed-batch tally (both
	// count successful flushes only), so MeanBatch and the histogram agree
	// on the same population.
	s.met.observeBatch(job.level, n)

	perImageJ := res.EnergyJ / float64(n)
	comfortable := true
	sawDeadline := false
	for i, r := range job.reqs {
		queueMS := float64(start.Sub(r.at)) / float64(time.Millisecond)
		if queueMS < 0 {
			queueMS = 0
		}
		responseMS := queueMS + res.TimeMS
		deadline := r.task.Deadline()
		if !math.IsInf(deadline, 1) {
			sawDeadline = true
			if responseMS > 0.5*deadline {
				comfortable = false
			}
		}
		out := Result{
			ID:              r.id,
			Batch:           n,
			Level:           job.level,
			Quantized:       job.quant,
			QueueMS:         queueMS,
			ExecMS:          res.TimeMS,
			ResponseMS:      responseMS,
			EnergyPerImageJ: perImageJ,
			Entropy:         res.Entropy,
			SoC:             r.task.SoC(responseMS, res.Entropy, perImageJ),
			DeadlineMet:     responseMS <= deadline,
		}
		if res.Probs != nil && i < len(res.Probs) {
			out.Probs = res.Probs[i]
		}
		r.tr.Mark("execute")
		s.st.record(out)
		s.met.observeResponse(job.level, responseMS)
		r.fut.ch <- outcome{res: out}
		s.finishTrace(r, n, job.level, demoted, nil)
	}

	// Comfortable means every deadline-bearing request in the batch
	// finished inside half its own deadline; deadline-free batches never
	// ease an escalated level back down.
	s.ctrl.observe(res.Entropy > s.task.EntropyThreshold, sawDeadline && comfortable)
	s.st.batchDone(n, job.quant)
}

// finishTrace closes a request's trace (resolve stage), folds its stage
// durations into the stage histograms, and parks it in the ring.
func (s *Server) finishTrace(r *request, batch, level int, demoted bool, err error) {
	tr := r.tr
	if len(tr.Stages) > 0 && tr.Stages[len(tr.Stages)-1].Name != "execute" {
		tr.Mark("execute") // failed batches still close the execute stage
	}
	tr.Mark("resolve")
	tr.Batch, tr.Level, tr.Demoted = batch, level, demoted
	if err != nil {
		tr.Err = err.Error()
	}
	s.met.observeStages(tr)
	s.traces.Add(tr)
}
