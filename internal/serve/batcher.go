package serve

import (
	"math"
	"time"

	"pcnn/internal/tensor"
)

// msSince returns the wall-clock milliseconds elapsed since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// batcher is the coalescing loop: it accumulates requests until the batch
// is full or the oldest request's slack (deadline − Eq 12 prediction) runs
// out, then hands the batch to the worker pool. Backpressure is natural:
// when every worker is busy the flush send blocks, the admission queue
// fills, and Submit starts rejecting.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	defer close(s.flushCh)

	var pending []*request
	var timer *time.Timer
	var timerC <-chan time.Time
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
		}
		timerC = nil
	}
	arm := func(d time.Duration) {
		disarm()
		if d < 0 {
			d = 0
		}
		timer = time.NewTimer(d)
		timerC = timer.C
	}

	for {
		select {
		case r, ok := <-s.submitCh:
			if !ok {
				disarm()
				if len(pending) > 0 {
					s.flush(pending)
				}
				return
			}
			pending = append(pending, r)
			if len(pending) >= s.cfg.MaxBatch {
				disarm()
				s.flush(pending)
				pending = nil
				continue
			}
			arm(s.flushDelay(pending))
		case <-timerC:
			timerC, timer = nil, nil
			if len(pending) > 0 {
				s.flush(pending)
				pending = nil
			}
		}
	}
}

// flushDelay returns how much longer the batcher may hold the pending
// batch: the oldest request's remaining slack at the current level,
// additionally capped by the linger window so tasks with lazy deadlines
// (or none at all) still flush promptly.
func (s *Server) flushDelay(pending []*request) time.Duration {
	waited := msSince(pending[0].at)
	linger := s.cfg.LingerMS - waited
	slack := s.task.SlackMS(waited, s.queuePredictMS(s.ctrl.Level(), len(pending)))
	d := math.Min(slack, linger)
	if d <= 0 {
		return 0
	}
	return time.Duration(d * float64(time.Millisecond))
}

// queuePredictMS estimates how long a flush of n requests will take to
// finish at a level: the batches already in flight ahead of it (spread
// over the worker pool) plus its own predicted execution time.
func (s *Server) queuePredictMS(level, n int) float64 {
	ahead := float64(s.inflight.Load()) * s.ex.PredictMS(level, s.cfg.MaxBatch) / float64(s.cfg.Workers)
	return ahead + s.ex.PredictMS(level, n)
}

// flush hands one batch to the worker pool, escalating the degradation
// level first if the oldest request's slack has gone negative (graceful
// degradation instead of dropping).
func (s *Server) flush(reqs []*request) {
	oldest := reqs[0]
	n := len(reqs)
	level := s.ctrl.Level()
	if !s.cfg.DisableDegrade {
		level = s.ctrl.escalate(func(l int) bool {
			return s.task.SlackMS(msSince(oldest.at), s.queuePredictMS(l, n)) >= 0
		})
	}
	s.inflight.Add(1)
	s.flushCh <- &batchJob{reqs: reqs, level: level}
}

// worker executes flushed batches until the batcher closes the channel.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.flushCh {
		s.runBatch(job)
	}
}

// gatherInputs assembles the batch input tensor when every request carries
// a sample; nil otherwise (simulation-only requests).
func gatherInputs(reqs []*request) *tensor.Tensor {
	for _, r := range reqs {
		if r.input == nil {
			return nil
		}
	}
	shape := reqs[0].input.Shape()
	per := reqs[0].input.Len()
	batch := tensor.New(append([]int{len(reqs)}, shape...)...)
	for i, r := range reqs {
		if r.input.Len() != per {
			return nil // heterogeneous samples; fall back to simulation-only
		}
		copy(batch.Data[i*per:(i+1)*per], r.input.Data)
	}
	return batch
}

// runBatch executes one batch, resolves its futures, and feeds the
// entropy/slack signals back into the controller.
func (s *Server) runBatch(job *batchJob) {
	n := len(job.reqs)
	start := time.Now()
	res, err := s.ex.Execute(job.level, n, gatherInputs(job.reqs))
	if s.cfg.Pace > 0 && err == nil {
		time.Sleep(time.Duration(res.TimeMS * s.cfg.Pace * float64(time.Millisecond)))
	}
	s.inflight.Add(-1)
	s.queueDepth.Add(int64(-n))
	if err != nil {
		s.st.failBatch(n)
		for _, r := range job.reqs {
			r.fut.ch <- outcome{err: err}
		}
		return
	}

	perImageJ := res.EnergyJ / float64(n)
	oldestResponseMS := 0.0
	for i, r := range job.reqs {
		queueMS := float64(start.Sub(r.at)) / float64(time.Millisecond)
		if queueMS < 0 {
			queueMS = 0
		}
		responseMS := queueMS + res.TimeMS
		if responseMS > oldestResponseMS {
			oldestResponseMS = responseMS
		}
		out := Result{
			ID:              r.id,
			Batch:           n,
			Level:           job.level,
			QueueMS:         queueMS,
			ExecMS:          res.TimeMS,
			ResponseMS:      responseMS,
			EnergyPerImageJ: perImageJ,
			Entropy:         res.Entropy,
			SoC:             s.task.SoC(responseMS, res.Entropy, perImageJ),
			DeadlineMet:     responseMS <= s.task.Deadline(),
		}
		if res.Probs != nil && i < len(res.Probs) {
			out.Probs = res.Probs[i]
		}
		s.st.record(out)
		r.fut.ch <- outcome{res: out}
	}

	deadline := s.task.Deadline()
	comfortable := !math.IsInf(deadline, 1) && oldestResponseMS <= 0.5*deadline
	s.ctrl.observe(res.Entropy > s.task.EntropyThreshold, comfortable)
	s.st.batchDone(n)
}
