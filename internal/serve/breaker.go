package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position. The numeric values are
// what the pcnn_serve_breaker_state gauge exports.
type BreakerState int

const (
	// BreakerClosed admits every execution attempt (healthy).
	BreakerClosed BreakerState = 0
	// BreakerHalfOpen admits exactly one probe attempt after the cooldown;
	// its outcome decides between closing and re-opening.
	BreakerHalfOpen BreakerState = 1
	// BreakerOpen fails every attempt fast until the cooldown elapses.
	BreakerOpen BreakerState = 2
)

// String names the state for /healthz and snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a per-executor circuit breaker: `threshold` consecutive
// execution failures trip it open, every attempt then fails fast until
// the cooldown elapses, after which exactly one half-open probe runs —
// success closes the breaker, failure re-opens it for another cooldown.
// A threshold ≤ 0 disables the breaker entirely; the disabled allow path
// takes no lock, keeping the executor hot path untouched.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe attempt is in flight

	trips  uint64 // closed/half-open → open transitions
	resets uint64 // half-open → closed transitions
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if cooldown <= 0 {
		cooldown = 250 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether one execution attempt may proceed. An open
// breaker past its cooldown moves to half-open and admits the caller as
// the single probe; concurrent attempts keep failing fast until the probe
// reports back.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success reports one attempt that completed; it resets the failure
// streak and closes a half-open breaker.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
		b.resets++
	}
}

// failure reports one failed attempt; threshold consecutive failures trip
// a closed breaker, and any half-open probe failure re-opens immediately.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.consecFails = 0
	b.trips++
}

// snapshot returns the state and lifetime trip/reset tallies.
func (b *breaker) snapshot() (state BreakerState, trips, resets uint64) {
	if b.threshold <= 0 {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.resets
}
