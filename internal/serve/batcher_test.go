package serve

import (
	"testing"
	"time"

	"pcnn/internal/satisfaction"
	"pcnn/internal/tensor"
)

// TestFlushTimerReuse: the reused timer survives the full arm → fire →
// re-arm and arm → disarm → re-arm cycles without a stale fire leaking
// into the next arming.
func TestFlushTimerReuse(t *testing.T) {
	var ft flushTimer
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("armed timer never fired")
	}

	// Re-arm after a fire; it must fire again, exactly once.
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed timer never fired")
	}

	// Arm far out, disarm, then arm short: the long deadline must not fire.
	ft.arm(time.Hour)
	ft.disarm()
	if ft.C != nil {
		t.Fatal("disarmed timer still exposes a channel")
	}
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("timer armed after disarm never fired")
	}

	// Let it fire unobserved, then re-arm: the drain path must clear the
	// stale tick so the next receive is the new deadline's.
	ft.arm(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	ft.arm(time.Hour)
	select {
	case <-ft.C:
		t.Fatal("stale fire leaked through re-arm")
	case <-time.After(50 * time.Millisecond):
	}
	ft.disarm()
}

// TestGatherInputs covers all three outcomes: a clean stack, a deliberate
// simulation-only batch, and the two demotion shapes.
func TestGatherInputs(t *testing.T) {
	mk := func(shape ...int) *request {
		in := tensor.New(shape...)
		for i := range in.Data {
			in.Data[i] = float32(i + 1)
		}
		return &request{input: in}
	}

	if b, demoted := gatherInputs([]*request{{}, {}}); b != nil || demoted {
		t.Errorf("all-nil batch: got (%v, %v), want (nil, false)", b, demoted)
	}
	if b, demoted := gatherInputs([]*request{mk(3, 4, 4), {}}); b != nil || !demoted {
		t.Errorf("mixed nil/sample batch: got (%v, %v), want (nil, true)", b, demoted)
	}
	if b, demoted := gatherInputs([]*request{mk(3, 4, 4), mk(3, 5, 5)}); b != nil || !demoted {
		t.Errorf("heterogeneous shapes: got (%v, %v), want (nil, true)", b, demoted)
	}

	r1, r2 := mk(3, 4, 4), mk(3, 4, 4)
	b, demoted := gatherInputs([]*request{r1, r2})
	if b == nil || demoted {
		t.Fatalf("homogeneous batch: got (%v, %v), want stacked tensor", b, demoted)
	}
	if got := b.Shape(); len(got) != 4 || got[0] != 2 || got[1] != 3 || got[2] != 4 || got[3] != 4 {
		t.Fatalf("stacked shape = %v, want [2 3 4 4]", got)
	}
	per := r1.input.Len()
	if b.Data[0] != r1.input.Data[0] || b.Data[per] != r2.input.Data[0] {
		t.Error("stacked data rows do not match the per-request samples")
	}
}

// TestMixedShapeDemotion: a batch coalescing heterogeneous input shapes
// must still serve (simulation-only), and the demotion must be visible in
// the snapshot, the trace, and the exported metrics — the bugfix for
// gatherInputs silently returning nil.
func TestMixedShapeDemotion(t *testing.T) {
	ex := &fakeExec{maxBatch: 2, msPerImage: []float64{1}, entropies: []float64{0.1}}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{MaxBatch: 2, Workers: 1, LingerMS: 500})
	if err != nil {
		t.Fatal(err)
	}

	in1 := tensor.New(3, 4, 4)
	in2 := tensor.New(3, 6, 6)
	f1, err := s.SubmitInput(in1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.SubmitInput(in2)
	if err != nil {
		t.Fatal(err)
	}
	res := waitAll(t, []*Future{f1, f2})
	closeServer(t, s)

	for i, r := range res {
		if r.Batch != 2 {
			t.Fatalf("request %d batch = %d, want the two submits coalesced", i, r.Batch)
		}
		if r.Probs != nil {
			t.Errorf("request %d got probs from a demoted batch", i)
		}
	}
	snap := s.Stats()
	if snap.DemotedBatches != 1 {
		t.Fatalf("DemotedBatches = %d, want 1", snap.DemotedBatches)
	}
	if snap.Completed != 2 || snap.Failed != 0 {
		t.Fatalf("demoted batch lost requests: %+v", snap)
	}
	traces := s.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	for _, tr := range traces {
		if !tr.Demoted {
			t.Errorf("trace %d not flagged demoted", tr.ID)
		}
	}
}

// BenchmarkFlushTimerReuse vs BenchmarkTimerPerArm quantifies the arm()
// fix: the reused timer allocates only on first arm, where the old
// per-request time.NewTimer allocated every time.
func BenchmarkFlushTimerReuse(b *testing.B) {
	var ft flushTimer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ft.arm(time.Hour)
	}
	ft.disarm()
}

func BenchmarkTimerPerArm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := time.NewTimer(time.Hour)
		tm.Stop()
	}
}
