package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcnn/internal/satisfaction"
	"pcnn/internal/tensor"
)

// TestFlushTimerReuse: the reused timer survives the full arm → fire →
// re-arm and arm → disarm → re-arm cycles without a stale fire leaking
// into the next arming.
func TestFlushTimerReuse(t *testing.T) {
	var ft flushTimer
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("armed timer never fired")
	}

	// Re-arm after a fire; it must fire again, exactly once.
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed timer never fired")
	}

	// Arm far out, disarm, then arm short: the long deadline must not fire.
	ft.arm(time.Hour)
	ft.disarm()
	if ft.C != nil {
		t.Fatal("disarmed timer still exposes a channel")
	}
	ft.arm(time.Millisecond)
	select {
	case <-ft.C:
		ft.fired()
	case <-time.After(5 * time.Second):
		t.Fatal("timer armed after disarm never fired")
	}

	// Let it fire unobserved, then re-arm: the drain path must clear the
	// stale tick so the next receive is the new deadline's.
	ft.arm(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	ft.arm(time.Hour)
	select {
	case <-ft.C:
		t.Fatal("stale fire leaked through re-arm")
	case <-time.After(50 * time.Millisecond):
	}
	ft.disarm()
}

// TestGatherInputs covers all three outcomes: a clean stack, a deliberate
// simulation-only batch, and the two demotion shapes.
func TestGatherInputs(t *testing.T) {
	mk := func(shape ...int) *request {
		in := tensor.New(shape...)
		for i := range in.Data {
			in.Data[i] = float32(i + 1)
		}
		return &request{input: in}
	}

	if b, demoted := gatherInputs([]*request{{}, {}}); b != nil || demoted {
		t.Errorf("all-nil batch: got (%v, %v), want (nil, false)", b, demoted)
	}
	if b, demoted := gatherInputs([]*request{mk(3, 4, 4), {}}); b != nil || !demoted {
		t.Errorf("mixed nil/sample batch: got (%v, %v), want (nil, true)", b, demoted)
	}
	if b, demoted := gatherInputs([]*request{mk(3, 4, 4), mk(3, 5, 5)}); b != nil || !demoted {
		t.Errorf("heterogeneous shapes: got (%v, %v), want (nil, true)", b, demoted)
	}

	r1, r2 := mk(3, 4, 4), mk(3, 4, 4)
	b, demoted := gatherInputs([]*request{r1, r2})
	if b == nil || demoted {
		t.Fatalf("homogeneous batch: got (%v, %v), want stacked tensor", b, demoted)
	}
	if got := b.Shape(); len(got) != 4 || got[0] != 2 || got[1] != 3 || got[2] != 4 || got[3] != 4 {
		t.Fatalf("stacked shape = %v, want [2 3 4 4]", got)
	}
	per := r1.input.Len()
	if b.Data[0] != r1.input.Data[0] || b.Data[per] != r2.input.Data[0] {
		t.Error("stacked data rows do not match the per-request samples")
	}
}

// TestMixedShapeDemotion: a batch coalescing heterogeneous input shapes
// must still serve (simulation-only), and the demotion must be visible in
// the snapshot, the trace, and the exported metrics — the bugfix for
// gatherInputs silently returning nil.
func TestMixedShapeDemotion(t *testing.T) {
	ex := &fakeExec{maxBatch: 2, msPerImage: []float64{1}, entropies: []float64{0.1}}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{MaxBatch: 2, Workers: 1, LingerMS: 500})
	if err != nil {
		t.Fatal(err)
	}

	in1 := tensor.New(3, 4, 4)
	in2 := tensor.New(3, 6, 6)
	f1, err := s.SubmitInput(in1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.SubmitInput(in2)
	if err != nil {
		t.Fatal(err)
	}
	res := waitAll(t, []*Future{f1, f2})
	closeServer(t, s)

	for i, r := range res {
		if r.Batch != 2 {
			t.Fatalf("request %d batch = %d, want the two submits coalesced", i, r.Batch)
		}
		if r.Probs != nil {
			t.Errorf("request %d got probs from a demoted batch", i)
		}
	}
	snap := s.Stats()
	if snap.DemotedBatches != 1 {
		t.Fatalf("DemotedBatches = %d, want 1", snap.DemotedBatches)
	}
	if snap.Completed != 2 || snap.Failed != 0 {
		t.Fatalf("demoted batch lost requests: %+v", snap)
	}
	traces := s.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	for _, tr := range traces {
		if !tr.Demoted {
			t.Errorf("trace %d not flagged demoted", tr.ID)
		}
	}
}

// atomicClock is a goroutine-safe settable clock for autonomous-mode
// tests where the batcher reads virtual time concurrently with the test.
type atomicClock struct{ ns atomic.Int64 }

func (c *atomicClock) now() time.Time { return epoch().Add(time.Duration(c.ns.Load())) }
func (c *atomicClock) set(ms float64) { c.ns.Store(int64(ms * float64(time.Millisecond))) }

// fakeTimer is a hand-fired batcherTimer: the test decides when the
// deadline "elapses" by sending on the fire channel, so flush-vs-submit
// interleavings are exact instead of racing a wall-clock timer.
type fakeTimer struct {
	mu    sync.Mutex
	c     chan time.Time
	armed bool
	arms  []time.Duration
}

func newFakeTimer() *fakeTimer { return &fakeTimer{c: make(chan time.Time)} }

func (f *fakeTimer) arm(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.arms = append(f.arms, d)
}

func (f *fakeTimer) disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

func (f *fakeTimer) fired() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

func (f *fakeTimer) ch() <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		return nil
	}
	return f.c
}

// fire delivers a tick; it returns once the batcher has received it.
func (f *fakeTimer) fire() { f.c <- time.Time{} }

func (f *fakeTimer) armCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.arms)
}

func (f *fakeTimer) armAt(i int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.arms[i]
}

func (f *fakeTimer) isArmed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFlushTimerStaleFire pins the stale-fire edge inside the batcher
// loop: a fire whose armed delay described an older pending set must
// re-derive the due instant and re-arm — not flush a batch whose window
// has not closed — and a fire at the true due instant must flush.
func TestFlushTimerStaleFire(t *testing.T) {
	clk := &atomicClock{}
	ft := newFakeTimer()
	s, err := newServer(manualExec{}, satisfaction.ImageTagging(), Config{
		Workers: 1, MaxBatch: 4, QueueCap: 16,
		LingerMS: 20, Clock: clk.now, AgingMS: -1,
	}, func() batcherTimer { return ft })
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One background request at t=0: the batcher arms the 20 ms linger.
	f1, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first arm", func() bool { return ft.armCount() == 1 })
	if d := ft.armAt(0); d != 20*time.Millisecond {
		t.Fatalf("first arm = %v, want the 20ms linger", d)
	}

	// Fire with the virtual clock still at 0: the linger has not elapsed,
	// so this is a stale fire — the loop must re-arm for the remaining
	// window and flush nothing.
	ft.fire()
	waitUntil(t, "re-arm after stale fire", func() bool { return ft.armCount() == 2 })
	if got := s.Stats().Batches; got != 0 {
		t.Fatalf("stale fire flushed %d batches, want 0", got)
	}
	if d := ft.armAt(1); d != 20*time.Millisecond {
		t.Errorf("stale re-arm = %v, want the full 20ms still remaining", d)
	}

	// Advance past the linger and fire again: now the batch is due.
	clk.set(25)
	ft.fire()
	res, err := f1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMS != 25 {
		t.Errorf("request queued %v virtual ms, want 25 (flushed on the second fire)", res.QueueMS)
	}
	if got := s.Stats().Batches; got != 1 {
		t.Fatalf("batches = %d after due fire, want 1", got)
	}
	waitUntil(t, "disarm after flush", func() bool { return !ft.isArmed() })

	// A batch filling to MaxBatch flushes from the submit path and must
	// leave the timer disarmed — no pending fire for an empty queue.
	armsBefore := ft.armCount()
	var futs []*Future
	for i := 0; i < 4; i++ {
		f, err := s.Submit()
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "disarm after full-batch flush", func() bool { return !ft.isArmed() })
	if got := s.Stats().Batches; got != 2 {
		t.Fatalf("batches = %d after full-batch flush, want 2", got)
	}
	_ = armsBefore // the full-batch path may or may not touch arm; disarmed is the contract
}

// BenchmarkFlushTimerReuse vs BenchmarkTimerPerArm quantifies the arm()
// fix: the reused timer allocates only on first arm, where the old
// per-request time.NewTimer allocated every time.
func BenchmarkFlushTimerReuse(b *testing.B) {
	var ft flushTimer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ft.arm(time.Hour)
	}
	ft.disarm()
}

func BenchmarkTimerPerArm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := time.NewTimer(time.Hour)
		tm.Stop()
	}
}
