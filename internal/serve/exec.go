package serve

import (
	"time"

	"pcnn/internal/gpu"
	"pcnn/internal/tensor"
)

// executeBatch is the hardened execution path one worker drives for one
// flushed batch: every attempt first clears the circuit breaker, then
// runs under the per-attempt timeout; failures feed the breaker and are
// retried up to MaxRetries times with exponential backoff and jitter.
// With no injector, no timeout, no retries and no breaker configured this
// degenerates to exactly one Execute call with no extra allocations.
func (s *Server) executeBatch(level int, quant bool, n int, inputs *tensor.Tensor) (BatchResult, error) {
	for attempt := 0; ; attempt++ {
		if !s.brk.allow() {
			return BatchResult{}, ErrBreakerOpen
		}
		res, err := s.executeOnce(level, quant, n, inputs)
		if err == nil {
			s.brk.success()
			if nats := s.faults.CorruptNats(); nats > 0 {
				corruptResult(&res, nats)
			}
			return res, nil
		}
		s.brk.failure()
		if attempt >= s.cfg.MaxRetries {
			return BatchResult{}, err
		}
		s.st.retryInc()
		time.Sleep(s.backoff(attempt))
	}
}

// executeOnce runs a single attempt: an injected launch fault fails it
// before the executor runs (typed like a real gpu launch failure), a slow
// fault stretches the result's simulated cost, and the configured timeout
// bounds the executor's wall-clock time.
func (s *Server) executeOnce(level int, quant bool, n int, inputs *tensor.Tensor) (BatchResult, error) {
	if err := s.faults.LaunchError(); err != nil {
		return BatchResult{}, &gpu.LaunchError{Kernel: "serve.batch", Injected: true, Err: err}
	}
	res, err := s.executeTimed(level, quant, n, inputs)
	if err != nil {
		return BatchResult{}, err
	}
	if f := s.faults.SlowFactor(); f > 1 {
		res.TimeMS *= f
		res.EnergyJ *= f
	}
	return res, nil
}

// execCall dispatches one executor call at the batch's operating point:
// the quantized path when the flush rode the quant rung, the ordinary
// Execute otherwise.
func (s *Server) execCall(level int, quant bool, n int, inputs *tensor.Tensor) (BatchResult, error) {
	if quant && s.quantEx != nil {
		return s.quantEx.ExecuteQuant(s.cfg.Quantize, level, n, inputs)
	}
	return s.ex.Execute(level, n, inputs)
}

// executeTimed bounds one executor call by the configured wall-clock
// timeout. A timed-out attempt's goroutine is orphaned — it finishes into
// a buffered channel and is discarded; it never touches futures or stats,
// so a late completion cannot resolve anything after drain.
func (s *Server) executeTimed(level int, quant bool, n int, inputs *tensor.Tensor) (BatchResult, error) {
	if s.cfg.ExecTimeoutMS <= 0 {
		return s.execCall(level, quant, n, inputs)
	}
	type attempt struct {
		res BatchResult
		err error
	}
	ch := make(chan attempt, 1)
	go func() {
		res, err := s.execCall(level, quant, n, inputs)
		ch <- attempt{res, err}
	}()
	timer := time.NewTimer(time.Duration(s.cfg.ExecTimeoutMS * float64(time.Millisecond)))
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.res, a.err
	case <-timer.C:
		s.st.timeoutInc()
		return BatchResult{}, ErrExecTimeout
	}
}

// backoff returns the sleep before retry number attempt+1: base·2^attempt
// milliseconds scaled by a uniform jitter in [0.5, 1.5), drawn from the
// server's seeded stream so chaos runs replay identically.
func (s *Server) backoff(attempt int) time.Duration {
	ms := s.cfg.RetryBaseMS * float64(int(1)<<min(attempt, 20))
	s.retryMu.Lock()
	jitter := 0.5 + s.retryRng.Float64()
	s.retryMu.Unlock()
	return time.Duration(ms * jitter * float64(time.Millisecond))
}

// corruptResult applies an injected output corruption: softmax rows
// flatten to uniform (maximum per-row uncertainty) and the batch entropy
// is boosted by nats — exactly the signal that must push the measured
// entropy over the task threshold and trigger a calibration backtrack.
func corruptResult(res *BatchResult, nats float64) {
	res.Entropy += nats
	for _, row := range res.Probs {
		if len(row) == 0 {
			continue
		}
		u := 1 / float32(len(row))
		for i := range row {
			row[i] = u
		}
	}
}
