package serve

import "testing"

// never and always are escalate() predicates for the controller tests.
func never(int, bool) bool  { return false }
func always(int, bool) bool { return true }

func TestNewControllerClamps(t *testing.T) {
	cases := []struct {
		levels, base       int
		wantLevel, wantMax int
	}{
		{levels: 5, base: 2, wantLevel: 2, wantMax: 4},
		{levels: 5, base: -3, wantLevel: 0, wantMax: 4},
		{levels: 5, base: 99, wantLevel: 4, wantMax: 4},
		{levels: 0, base: 0, wantLevel: 0, wantMax: 0},
		{levels: -2, base: 1, wantLevel: 0, wantMax: 0},
	}
	for _, c := range cases {
		ctl := newController(c.levels, c.base, 4, false)
		if ctl.Level() != c.wantLevel || ctl.Base() != c.wantLevel || ctl.max != c.wantMax {
			t.Errorf("newController(%d, %d): level %d base %d max %d, want level/base %d max %d",
				c.levels, c.base, ctl.Level(), ctl.Base(), ctl.max, c.wantLevel, c.wantMax)
		}
	}
}

func TestControllerEscalateWalksToFit(t *testing.T) {
	ctl := newController(6, 0, 4, false)
	got, quant := ctl.escalate(func(level int, _ bool) bool { return level >= 3 })
	if got != 3 || ctl.Level() != 3 {
		t.Fatalf("escalate stopped at %d, want 3", got)
	}
	if quant {
		t.Fatal("quant-disabled controller escalated the quant rung")
	}
	if esc, _, _ := ctl.counts(); esc != 3 {
		t.Fatalf("escalations = %d, want 3", esc)
	}
	// Already fitting: no movement.
	if got, _ := ctl.escalate(always); got != 3 {
		t.Fatalf("escalate moved a fitting level to %d", got)
	}
	// Nothing fits: walks to the ceiling (max) and stops.
	if got, _ := ctl.escalate(never); got != 5 {
		t.Fatalf("escalate under never-fits stopped at %d, want max 5", got)
	}
}

// TestControllerCalibrationPinsCeiling is the PR-2 edge-case table: a
// calibration backtrack pins the ceiling one level down for a cooldown
// window, so escalation cannot immediately re-enter the level that just
// proved too uncertain; the ceiling releases only when the cooldown
// expires.
func TestControllerCalibrationPinsCeiling(t *testing.T) {
	ctl := newController(5, 0, 2, false) // max 4, recoverAfter (cooldown) 2
	ctl.escalate(func(level int, _ bool) bool { return level >= 3 })

	ctl.observe(true, false) // entropy crossed: backtrack 3 → 2
	if ctl.Level() != 2 {
		t.Fatalf("level after calibration = %d, want 2", ctl.Level())
	}
	if _, cal, _ := ctl.counts(); cal != 1 {
		t.Fatalf("calibrations = %d, want 1", cal)
	}

	// Cooldown window, flush 1: the ceiling caps escalation at 2.
	if got, _ := ctl.escalate(never); got != 2 {
		t.Fatalf("escalate during cooldown reached %d, want ceiling 2", got)
	}
	ctl.observe(false, false) // cooldown 2 → 1
	if got, _ := ctl.escalate(never); got != 2 {
		t.Fatalf("escalate during cooldown reached %d, want ceiling 2", got)
	}
	ctl.observe(false, false) // cooldown 1 → 0: ceiling releases to max

	if got, _ := ctl.escalate(never); got != 4 {
		t.Fatalf("escalate after cooldown reached %d, want max 4", got)
	}
}

// TestControllerRecalibrationRestartsCooldown: a second entropy crossing
// inside the cooldown window pins a still-lower ceiling and restarts the
// window, rather than letting the original window release it early.
func TestControllerRecalibrationRestartsCooldown(t *testing.T) {
	ctl := newController(5, 0, 2, false)
	ctl.escalate(func(level int, _ bool) bool { return level >= 3 })
	ctl.observe(true, false) // 3 → 2, ceiling 2, cooldown 2
	ctl.observe(true, false) // 2 → 1, ceiling 1, cooldown restarts at 2
	if ctl.Level() != 1 {
		t.Fatalf("level = %d, want 1", ctl.Level())
	}
	if got, _ := ctl.escalate(never); got != 1 {
		t.Fatalf("escalate reached %d, want re-pinned ceiling 1", got)
	}
	ctl.observe(false, false) // cooldown 2 → 1
	if got, _ := ctl.escalate(never); got != 1 {
		t.Fatalf("ceiling released one flush early (reached %d)", got)
	}
	ctl.observe(false, false) // cooldown 1 → 0
	if got, _ := ctl.escalate(never); got != 4 {
		t.Fatalf("escalate after restarted cooldown reached %d, want 4", got)
	}
}

func TestControllerCalibrationAtLevelZero(t *testing.T) {
	ctl := newController(4, 0, 2, false)
	for i := 0; i < 3; i++ {
		ctl.observe(true, false)
	}
	if ctl.Level() != 0 {
		t.Fatalf("level = %d, want 0", ctl.Level())
	}
	if _, cal, _ := ctl.counts(); cal != 0 {
		t.Fatalf("level-0 crossings counted %d calibrations, want 0", cal)
	}
	// The un-backtrackable crossing must not leave a stale ceiling.
	if got, _ := ctl.escalate(never); got != 3 {
		t.Fatalf("escalate reached %d, want max 3", got)
	}
}

func TestControllerRecoveryStreak(t *testing.T) {
	ctl := newController(6, 1, 3, false) // base 1, recoverAfter 3
	ctl.escalate(func(level int, _ bool) bool { return level >= 4 })

	// Two comfortable batches, then a neutral one: streak resets.
	ctl.observe(false, true)
	ctl.observe(false, true)
	ctl.observe(false, false)
	if ctl.Level() != 4 {
		t.Fatalf("level = %d after broken streak, want 4", ctl.Level())
	}
	// Three consecutive comfortable batches recover exactly one level.
	for i := 0; i < 3; i++ {
		ctl.observe(false, true)
	}
	if ctl.Level() != 3 {
		t.Fatalf("level = %d after full streak, want 3", ctl.Level())
	}
	if _, _, rec := ctl.counts(); rec != 1 {
		t.Fatalf("recoveries = %d, want 1", rec)
	}
	// Recovery walks toward base and stops there, never below.
	for i := 0; i < 12; i++ {
		ctl.observe(false, true)
	}
	if ctl.Level() != 1 {
		t.Fatalf("level = %d after long comfort, want base 1", ctl.Level())
	}
}

// TestControllerQuantBeforePerforate pins the ladder ordering: under
// pressure the controller tries the quant rung before deepening
// perforation, and only walks levels once quantization alone is not
// enough.
func TestControllerQuantBeforePerforate(t *testing.T) {
	ctl := newController(6, 0, 4, true)

	// Quantization alone rescues the flush: level must not move.
	level, quant := ctl.escalate(func(level int, quant bool) bool { return quant })
	if level != 0 || !quant {
		t.Fatalf("escalate = (%d, %v), want quant at level 0", level, quant)
	}
	if esc, _, _ := ctl.counts(); esc != 0 {
		t.Fatalf("perforation escalations = %d, want 0", esc)
	}
	if qesc, _ := ctl.quantCounts(); qesc != 1 {
		t.Fatalf("quant escalations = %d, want 1", qesc)
	}

	// Quantization is insufficient: levels walk, with quant staying on.
	level, quant = ctl.escalate(func(level int, quant bool) bool { return quant && level >= 2 })
	if level != 2 || !quant {
		t.Fatalf("escalate = (%d, %v), want quant at level 2", level, quant)
	}
	if esc, _, _ := ctl.counts(); esc != 2 {
		t.Fatalf("perforation escalations = %d, want 2", esc)
	}
}

// TestControllerQuantVeto is the deterministic calibration-veto test: an
// entropy crossing while quantized switches the rung off and vetoes it
// for exactly the cooldown window — escalate must NEVER return quant
// while the veto holds, no matter the pressure — and the veto releases
// with the cooldown.
func TestControllerQuantVeto(t *testing.T) {
	ctl := newController(4, 0, 3, true) // recoverAfter (cooldown) 3
	if _, quant := ctl.escalate(never); !quant {
		t.Fatal("quant rung did not engage under pressure")
	}

	ctl.observe(true, false) // entropy crossed while quantized
	if ctl.Quant() {
		t.Fatal("quant still on after a quantized entropy crossing")
	}
	if _, qcal := ctl.quantCounts(); qcal != 1 {
		t.Fatalf("quant calibrations = %d, want 1", qcal)
	}
	if _, cal, _ := ctl.counts(); cal != 0 {
		t.Fatalf("the quantized crossing charged %d perforation calibrations, want 0", cal)
	}
	if _, q := ctl.reachable(); q {
		t.Fatal("reachable() offers the quant rung while vetoed")
	}

	// Every flush inside the cooldown window: maximum pressure, and the
	// rung must stay fenced off.
	for i := 0; i < 3; i++ {
		if _, quant := ctl.escalate(never); quant {
			t.Fatalf("flush %d inside the veto window escalated to quant", i)
		}
		ctl.observe(false, false)
	}

	// Cooldown expired: the rung is available again.
	if _, q := ctl.reachable(); !q {
		t.Fatal("veto did not release with the cooldown")
	}
	if _, quant := ctl.escalate(never); !quant {
		t.Fatal("quant rung unavailable after the veto released")
	}
}

// TestControllerQuantRecoveryOrder: recovery unwinds perforation back to
// base first and releases the quant rung last, mirroring (in reverse) the
// quantize-before-perforate escalation order.
func TestControllerQuantRecoveryOrder(t *testing.T) {
	ctl := newController(4, 0, 2, true)
	ctl.escalate(func(level int, quant bool) bool { return quant && level >= 2 })

	for i := 0; i < 2; i++ {
		ctl.observe(false, true)
	}
	if ctl.Level() != 1 || !ctl.Quant() {
		t.Fatalf("after streak 1: level %d quant %v, want level 1 quantized", ctl.Level(), ctl.Quant())
	}
	for i := 0; i < 2; i++ {
		ctl.observe(false, true)
	}
	if ctl.Level() != 0 || !ctl.Quant() {
		t.Fatalf("after streak 2: level %d quant %v, want level 0 quantized", ctl.Level(), ctl.Quant())
	}
	for i := 0; i < 2; i++ {
		ctl.observe(false, true)
	}
	if ctl.Level() != 0 || ctl.Quant() {
		t.Fatalf("after streak 3: level %d quant %v, want full precision at base", ctl.Level(), ctl.Quant())
	}
	if _, _, rec := ctl.counts(); rec != 3 {
		t.Fatalf("recoveries = %d, want 3", rec)
	}
}
