package serve

import (
	"testing"
	"time"
)

// statClock is an advanceable fake clock for exercising idle gaps without
// sleeping.
type statClock struct{ t time.Time }

func newStatClock() *statClock      { return &statClock{t: time.Unix(1_700_000_000, 0)} }
func (c *statClock) now() time.Time { return c.t }
func (c *statClock) advance(s int)  { c.t = c.t.Add(time.Duration(s) * time.Second) }
func (c *statClock) record(s *stats, n int) {
	for i := 0; i < n; i++ {
		s.record(Result{ResponseMS: 1, DeadlineMet: true})
	}
}

// TestWindowedThroughputIdleGap is the regression for the throughput bug:
// ThroughputRPS used to be completions ÷ uptime, so any idle period
// depressed the reported rate forever. The windowed rate must recover to
// the live rate after an idle gap, while the lifetime average (still
// exported as LifetimeRPS) stays diluted.
func TestWindowedThroughputIdleGap(t *testing.T) {
	clk := newStatClock()
	st := newStatsClock(clk.now)

	// 10 seconds at 10 completions/s.
	for i := 0; i < 10; i++ {
		clk.record(st, 10)
		clk.advance(1)
	}
	if rps := st.windowedRPS(); rps < 8 || rps > 12 {
		t.Fatalf("steady-state windowed rate = %v, want ~10", rps)
	}

	// 100 idle seconds — over three windows of silence.
	clk.advance(100)

	// A full window's worth of traffic at 10/s.
	for i := 0; i < throughputWindowSec; i++ {
		clk.record(st, 10)
		clk.advance(1)
	}

	windowed := st.windowedRPS()
	lifetime := st.lifetimeRPS()
	if windowed < 8 || windowed > 12 {
		t.Fatalf("windowed rate = %v after idle gap, want ≈10 (idle gap must not depress it)", windowed)
	}
	if lifetime >= windowed/2 {
		t.Fatalf("lifetime rate %v not diluted below half the windowed rate %v; clock plumbing broken", lifetime, windowed)
	}
}

// TestStatsIdleGapZeroes: when the gap exceeds the window entirely, the
// windowed rate reads zero while lifetime stays positive.
func TestStatsIdleGapZeroes(t *testing.T) {
	clk := newStatClock()
	st := newStatsClock(clk.now)
	clk.record(st, 50)
	clk.advance(throughputWindowSec + 5)
	if rps := st.windowedRPS(); rps != 0 {
		t.Errorf("windowed rate = %v after gap beyond the window, want 0", rps)
	}
	if rps := st.lifetimeRPS(); rps <= 0 {
		t.Errorf("lifetime rate = %v, want > 0", rps)
	}
}

// TestLatencyReservoirWrap: past latSample the reservoir overwrites the
// oldest samples in ring order instead of growing or stalling.
func TestLatencyReservoirWrap(t *testing.T) {
	st := newStats()
	const extra = 100
	for i := 0; i < latSample+extra; i++ {
		st.record(Result{ResponseMS: float64(i), DeadlineMet: true})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.lat) != latSample {
		t.Fatalf("reservoir grew to %d, want capped at %d", len(st.lat), latSample)
	}
	if st.latIdx != extra {
		t.Fatalf("ring index = %d after %d overwrites, want %d", st.latIdx, extra, extra)
	}
	min := st.lat[0]
	for _, v := range st.lat {
		if v < min {
			min = v
		}
	}
	if min != extra {
		t.Fatalf("oldest surviving sample = %v, want %v (first %d overwritten)", min, extra, extra)
	}
}

// TestPercentilesEdgeCases: empty, single-sample and all-equal inputs.
func TestPercentilesEdgeCases(t *testing.T) {
	if p50, p95, p99 := percentiles(nil); p50 != 0 || p95 != 0 || p99 != 0 {
		t.Errorf("empty sample: got %v %v %v, want zeros", p50, p95, p99)
	}
	if p50, p95, p99 := percentiles([]float64{7.5}); p50 != 7.5 || p95 != 7.5 || p99 != 7.5 {
		t.Errorf("single sample: got %v %v %v, want 7.5 everywhere", p50, p95, p99)
	}
	same := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	if p50, p95, p99 := percentiles(same); p50 != 3 || p95 != 3 || p99 != 3 {
		t.Errorf("all-equal sample: got %v %v %v, want 3 everywhere", p50, p95, p99)
	}
	// Ordered sample: percentiles must be monotone and drawn from the data.
	asc := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p50, p95, p99 := percentiles(asc)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not monotone: %v %v %v", p50, p95, p99)
	}
	if p50 != 5 || p95 != 10 || p99 != 10 {
		t.Errorf("1..10 percentiles: got %v %v %v, want 5 10 10", p50, p95, p99)
	}
}
