package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"pcnn/internal/compile"
	"pcnn/internal/entropy"
	"pcnn/internal/gpu"
	"pcnn/internal/nn"
	"pcnn/internal/perforate"
	"pcnn/internal/runtimemgr"
	"pcnn/internal/satisfaction"
	"pcnn/internal/sched"
	"pcnn/internal/tensor"
)

// BatchResult is what executing one coalesced batch produced.
type BatchResult struct {
	// TimeMS and EnergyJ are the simulated cost of the whole batch on the
	// plan's device.
	TimeMS  float64
	EnergyJ float64
	// Entropy is the batch's output uncertainty: measured on the attached
	// executable network when one is present, otherwise the degradation
	// path's recorded value for the level.
	Entropy float64
	// Probs holds per-request softmax rows when an executable network ran
	// the batch for real; nil for simulation-only pipelines.
	Probs [][]float32
}

// Executor runs coalesced batches at a degradation level. Level 0 is the
// unperforated network; higher levels perforate more aggressively and run
// faster at higher output uncertainty. Implementations must be safe for
// concurrent use by the worker pool.
type Executor interface {
	// MaxBatch is the batch size the compiled plan selected; the batcher
	// coalesces up to this many requests by default.
	MaxBatch() int
	// Levels returns the number of degradation levels (≥ 1).
	Levels() int
	// Entropy returns the recorded output uncertainty at a level, the
	// value the server compares against the task threshold when picking
	// its base operating point.
	Entropy(level int) float64
	// PredictMS is the Eq 12 time-model estimate for executing a batch at
	// a level. It must be cheap: the batcher calls it on every flush.
	PredictMS(level, batch int) float64
	// Execute runs one batch. inputs is an N×C×H×W tensor when every
	// request carried a sample and the pipeline has an executable network;
	// nil otherwise.
	Execute(level, batch int, inputs *tensor.Tensor) (BatchResult, error)
}

// DefaultSyntheticLevels is how many degradation levels SyntheticPath
// builds for pipelines without a measured tuning table.
const DefaultSyntheticLevels = 6

// Documented output-uncertainty premiums of the reduced-precision modes:
// the mean-entropy increase quantized classification adds over fp32 at
// the same perforation level, bounded empirically by the int8 agreement
// test in quant_test.go. The server enables a mode's rung only when the
// base level's entropy plus this delta still clears the task threshold.
const (
	// Int8EntropyDelta bounds the entropy premium of symmetric int8
	// quantization with per-row/per-column scales.
	Int8EntropyDelta = 0.05
	// FP16EntropyDelta bounds the premium of fp16-storage GEMM, whose
	// 2^-11 operand rounding barely perturbs softmax rows.
	FP16EntropyDelta = 0.01
)

// QuantSpec describes one reduced-precision execution mode an executor
// offers the serving ladder's quantization rung.
type QuantSpec struct {
	// Speedup is the modeled whole-batch throughput factor over fp32 at
	// the same level; escalation prices a quantized flush at
	// PredictMS / Speedup.
	Speedup float64
	// EntropyDelta is the mode's documented uncertainty premium (see the
	// *EntropyDelta constants). The entropy gate — enable the rung only
	// when Entropy(base) + EntropyDelta ≤ the task threshold — reads it
	// at server construction.
	EntropyDelta float64
}

// QuantExecutor is the optional interface (the BatchLimiter /
// LayerProfiler pattern) executors implement to serve the quantization
// rung. Implementations must be safe for concurrent use alongside
// Execute: the controller can flip precision between flushes.
type QuantExecutor interface {
	// QuantSpec reports whether the executor supports reduced precision p
	// and, if so, its modeled cost/uncertainty profile.
	QuantSpec(p tensor.Precision) (QuantSpec, bool)
	// PredictQuantMS is PredictMS for a batch whose host GEMMs run at
	// precision p. Like PredictMS it must be cheap.
	PredictQuantMS(p tensor.Precision, level, batch int) float64
	// ExecuteQuant runs one batch with host GEMMs at precision p.
	ExecuteQuant(p tensor.Precision, level, batch int, inputs *tensor.Tensor) (BatchResult, error)
}

// SyntheticPath builds a degradation path for pipelines that have no
// trained scaled analogue (and hence no measured tuning table): level i
// perforates every conv layer to step^i of its output area, quantized to
// the grids perforate actually computes, with entropies ramping from half
// the task threshold at level 0 to ~1.6× the threshold at the deepest
// level — so escalation past the threshold (and the calibration backtrack
// it triggers) stays reachable, mirroring the measured tables the tuner
// emits.
func SyntheticPath(net *nn.NetShape, task satisfaction.Task, levels int) []sched.TuningPoint {
	if levels < 2 {
		levels = 2
	}
	const step = 0.8
	thr := task.EntropyThreshold
	if thr <= 0 {
		thr = 0.9
	}
	convs := net.ConvLayers()
	path := make([]sched.TuningPoint, 0, levels)
	for i := 0; i < levels; i++ {
		target := math.Pow(step, float64(i))
		var keeps map[string]float64
		if i > 0 {
			keeps = make(map[string]float64, len(convs))
			for _, c := range convs {
				ho, wo := c.OutDims()
				m := perforate.FractionGrid(wo, ho, target)
				keeps[c.Name] = 1 - m.Rate()
			}
		}
		frac := float64(i) / float64(levels-1)
		path = append(path, sched.TuningPoint{
			Keeps:   keeps,
			Entropy: thr * (0.5 + 1.1*frac*frac),
		})
	}
	return path
}

// levelBatch keys the per-(level, batch) simulation cache.
type levelBatch struct{ level, batch int }

// planLimitProbe bounds the memory-ceiling search; far above any batch
// the roadmap's platforms compile.
const planLimitProbe = 256

// PlanExecutor implements Executor on top of a compiled plan, a
// degradation path, and (optionally) the trained scaled analogue whose
// measured entropy drives calibration.
//
// Exact plans are compiled lazily at power-of-two *anchor* batches (plus
// the deployment's own compiled batch); any other batch size executes by
// interpolation: the geometrically nearest anchor plan supplies the tuned
// per-layer design, and the Eq 12 evaluator re-derives its cost at the
// requested batch. The previous implementation compiled a fresh plan per
// distinct batch and — when device memory could not fit it — silently
// shrank the plan while still executing the full batch, mispricing every
// partial flush (the demotion-to-singleton path behind the mean_batch
// collapse). Simulated aggregates, profiles and predictions are cached
// per (level, batch), so steady-state serving costs one map lookup per
// flush.
type PlanExecutor struct {
	plan   *compile.Plan
	path   []sched.TuningPoint
	scaled *nn.Sequential
	table  *runtimemgr.Table

	mu       sync.Mutex
	plans    map[int]*compile.Plan
	aggs     map[levelBatch]gpu.Aggregate
	profiles map[levelBatch][]compile.LayerProfile
	preds    map[levelBatch]float64
	limit    int // memory batch ceiling; 0 = not yet probed

	// quantEngines holds one lazily-built GEMM engine per reduced
	// precision, sharing the process-wide worker pool; ExecuteQuant swaps
	// one onto the scaled network under netMu for the batch's duration.
	quantEngines map[tensor.Precision]*tensor.Engine

	// netMu serializes perforation state on the shared scaled network.
	netMu sync.Mutex
}

// NewPlanExecutor builds the production executor. path may be nil, in
// which case a synthetic degradation path is derived from the plan's
// network and task. scaled and table must be passed together (the table
// maps levels onto the scaled network's perforable layers); both nil gives
// a simulation-only pipeline.
func NewPlanExecutor(plan *compile.Plan, path []sched.TuningPoint, scaled *nn.Sequential, table *runtimemgr.Table) (*PlanExecutor, error) {
	if plan == nil {
		return nil, errors.New("serve: NewPlanExecutor needs a compiled plan")
	}
	if (scaled == nil) != (table == nil) {
		return nil, errors.New("serve: scaled network and tuning table must be attached together")
	}
	if len(path) == 0 {
		path = SyntheticPath(plan.Net, plan.Task, DefaultSyntheticLevels)
	}
	return &PlanExecutor{
		plan:     plan,
		path:     path,
		scaled:   scaled,
		table:    table,
		plans:    map[int]*compile.Plan{plan.Batch: plan},
		aggs:     map[levelBatch]gpu.Aggregate{},
		profiles: map[levelBatch][]compile.LayerProfile{},
		preds:    map[levelBatch]float64{},
	}, nil
}

// MaxBatch implements Executor.
func (e *PlanExecutor) MaxBatch() int { return e.plan.Batch }

// Levels implements Executor.
func (e *PlanExecutor) Levels() int { return len(e.path) }

// Entropy implements Executor.
func (e *PlanExecutor) Entropy(level int) float64 {
	return e.path[e.clamp(level)].Entropy
}

func (e *PlanExecutor) clamp(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(e.path) {
		return len(e.path) - 1
	}
	return level
}

// BatchLimit implements BatchLimiter: the largest batch the plan's device
// memory can hold, probed once and cached. CompileAtBatch decrements from
// the probe ceiling until the analytic memory model fits, so one
// compilation answers the global ceiling.
func (e *PlanExecutor) BatchLimit() int {
	e.mu.Lock()
	limit := e.limit
	e.mu.Unlock()
	if limit > 0 {
		return limit
	}
	p, err := compile.CompileAtBatch(e.plan.Net, e.plan.Dev, e.plan.Task, planLimitProbe)
	if err != nil {
		limit = e.plan.Batch // pessimistic: at least the deployed plan fits
	} else {
		limit = p.Batch
	}
	e.mu.Lock()
	e.limit = limit
	if err == nil {
		if _, ok := e.plans[p.Batch]; !ok {
			e.plans[p.Batch] = p
		}
	}
	e.mu.Unlock()
	return limit
}

// anchorFor maps a batch onto its power-of-two anchor: the geometrically
// nearest power of two, which bounds the Eq 12 extrapolation ratio by √2.
func anchorFor(batch int) int {
	if batch <= 1 {
		return 1
	}
	lo := 1
	for lo*2 <= batch {
		lo *= 2
	}
	if lo == batch {
		return batch
	}
	hi := lo * 2
	// Geometric midpoint: batch² against lo·hi.
	if batch*batch <= lo*hi {
		return lo
	}
	return hi
}

// planNear returns (caching) the nearest exactly-compiled plan for a
// batch: the batch's own plan on a cache hit, otherwise its power-of-two
// anchor, compiled once and shared by every nearby batch size. When
// device memory cannot hold the anchor, the compiler's largest fitting
// batch becomes the anchor and the memory ceiling is recorded — callers
// interpolate from it instead of silently executing a shrunken plan.
func (e *PlanExecutor) planNear(batch int) (*compile.Plan, error) {
	if batch < 1 {
		batch = 1
	}
	e.mu.Lock()
	p, ok := e.plans[batch]
	e.mu.Unlock()
	if ok {
		return p, nil
	}
	anchor := anchorFor(batch)
	e.mu.Lock()
	p, ok = e.plans[anchor]
	e.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := compile.CompileAtBatch(e.plan.Net, e.plan.Dev, e.plan.Task, anchor)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if p.Batch < anchor && (e.limit == 0 || p.Batch < e.limit) {
		e.limit = p.Batch // memory shrank the anchor: that is the ceiling
	}
	if prev, ok := e.plans[p.Batch]; ok {
		p = prev // lost a race or anchor shrank onto a cached batch
	} else {
		e.plans[p.Batch] = p
	}
	e.mu.Unlock()
	return p, nil
}

// predictExact sums a plan's tuned per-layer predictions at its own
// compiled batch, with conv layers scaled by the level's keep fraction
// (perforation shrinks the GEMM N dimension proportionally).
func predictExact(p *compile.Plan, keeps map[string]float64) float64 {
	var ms float64
	for _, l := range p.Layers {
		frac := 1.0
		if l.GEMM.IsConv {
			if f, ok := keeps[l.Name]; ok && f < 1 {
				frac = f
			}
		}
		ms += l.PredictedMS * frac
	}
	return ms
}

// PredictMS implements Executor: the tuned per-layer sum when a plan
// compiled at exactly this batch is cached, otherwise the Eq 12 evaluator
// re-deriving the nearest anchor plan's design at the requested batch —
// every batch size is priced without an exact (level, batch) cache hit.
func (e *PlanExecutor) PredictMS(level, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	level = e.clamp(level)
	key := levelBatch{level, batch}
	e.mu.Lock()
	ms, ok := e.preds[key]
	e.mu.Unlock()
	if ok {
		return ms
	}
	keeps := e.path[level].Keeps
	p, err := e.planNear(batch)
	if err != nil {
		// No compilable neighbour: rescale the deployed plan's design
		// point; Execute will surface the error.
		return compile.PredictMS(e.plan, batch, keeps)
	}
	if p.Batch == batch {
		ms = predictExact(p, keeps)
	} else {
		ms = compile.PredictMS(p, batch, keeps)
	}
	e.mu.Lock()
	e.preds[key] = ms
	e.mu.Unlock()
	return ms
}

// aggFor simulates (caching) one batch at a level on the plan's device.
// Batches with an exactly-compiled plan simulate for real; any other
// batch interpolates from its anchor: the anchor's simulated aggregate
// and profile scaled by the Eq 12 cost ratio between the two batches, so
// a 3-wide flush is priced between the 2- and 4-wide simulations rather
// than executing a silently shrunken plan. Alongside the aggregate it
// keeps the per-layer profile, so Profile answers from cache for any
// operating point the server has actually run.
func (e *PlanExecutor) aggFor(level, batch int) (gpu.Aggregate, error) {
	key := levelBatch{level, batch}
	e.mu.Lock()
	agg, ok := e.aggs[key]
	e.mu.Unlock()
	if ok {
		return agg, nil
	}
	p, err := e.planNear(batch)
	if err != nil {
		return gpu.Aggregate{}, err
	}
	keeps := e.path[level].Keeps
	if p.Batch != batch {
		// Interpolate: simulate the anchor exactly (recursion bottoms out —
		// plans[p.Batch] is cached), then scale by the analytic cost ratio.
		anchorAgg, err := e.aggFor(level, p.Batch)
		if err != nil {
			return gpu.Aggregate{}, err
		}
		anchorMS := e.PredictMS(level, p.Batch)
		ratio := 1.0
		if anchorMS > 0 {
			ratio = e.PredictMS(level, batch) / anchorMS
		}
		agg = gpu.Aggregate{
			TimeMS:    anchorAgg.TimeMS * ratio,
			EnergyJ:   anchorAgg.EnergyJ * ratio,
			AvgPowerW: anchorAgg.AvgPowerW,
		}
		e.mu.Lock()
		prof := make([]compile.LayerProfile, len(e.profiles[levelBatch{level, p.Batch}]))
		copy(prof, e.profiles[levelBatch{level, p.Batch}])
		for i := range prof {
			prof[i].PredictedMS *= ratio
			prof[i].TimeMS *= ratio
			prof[i].EnergyJ *= ratio
		}
		e.aggs[key] = agg
		e.profiles[key] = prof
		e.mu.Unlock()
		return agg, nil
	}
	var results []gpu.Result
	if len(keeps) == 0 {
		results, agg, err = p.Simulate(true)
	} else {
		var launches []gpu.Launch
		launches, err = p.PerforatedLaunches(keeps, true)
		if err != nil {
			return gpu.Aggregate{}, err
		}
		results, agg, err = p.Device().Run(launches)
	}
	if err != nil {
		return gpu.Aggregate{}, err
	}
	e.mu.Lock()
	e.aggs[key] = agg
	e.profiles[key] = p.ProfileResults(results, keeps)
	e.mu.Unlock()
	return agg, nil
}

// Profile implements the serve LayerProfiler interface: the per-layer
// time/energy breakdown of one batch at a level, simulated on first use
// and cached with the aggregate thereafter. The profile's PredictedMS
// column sums exactly to PredictMS(level, batch).
func (e *PlanExecutor) Profile(level, batch int) ([]compile.LayerProfile, error) {
	level = e.clamp(level)
	if batch < 1 {
		batch = 1
	}
	if _, err := e.aggFor(level, batch); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]compile.LayerProfile(nil), e.profiles[levelBatch{level, batch}]...), nil
}

// Execute implements Executor: the GPU simulator supplies the batch's time
// and energy at the level's perforation, and — when an executable network
// is attached — the scaled analogue classifies the inputs for real (through
// the parallel GEMM engine), supplying softmax rows and measured entropy
// for calibration.
func (e *PlanExecutor) Execute(level, batch int, inputs *tensor.Tensor) (BatchResult, error) {
	if batch < 1 {
		return BatchResult{}, fmt.Errorf("serve: execute batch %d", batch)
	}
	level = e.clamp(level)
	agg, err := e.aggFor(level, batch)
	if err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{TimeMS: agg.TimeMS, EnergyJ: agg.EnergyJ, Entropy: e.path[level].Entropy}
	if e.scaled != nil && inputs != nil && inputs.Dim(0) > 0 {
		probs, h := e.predict(level, inputs)
		res.Probs, res.Entropy = probs, h
	}
	return res, nil
}

// predict classifies inputs on the scaled network perforated to the
// table entry matching the level, returning softmax rows and measured
// mean entropy.
func (e *PlanExecutor) predict(level int, inputs *tensor.Tensor) ([][]float32, float64) {
	return e.predictWith(nil, level, inputs)
}

// predictWith is predict with an optional GEMM engine swapped onto the
// scaled network for the batch's duration. netMu serializes both the
// perforation state and the engine swap, and SetEngine(nil) restores the
// default engine before the lock releases — no other non-test code calls
// SetEngine, so concurrent fp32 batches never observe the quant engine.
func (e *PlanExecutor) predictWith(eng *tensor.Engine, level int, inputs *tensor.Tensor) ([][]float32, float64) {
	e.netMu.Lock()
	defer e.netMu.Unlock()
	lvl := level
	if lvl >= len(e.table.Entries) {
		lvl = len(e.table.Entries) - 1
	}
	entry := e.table.Entries[lvl]
	layers := e.scaled.PerforableLayers()
	for i, l := range layers {
		k := entry.Keeps[i]
		ho, wo := l.OutDims()
		if k.Full(wo, ho) {
			l.SetPerforation(0, 0)
		} else {
			l.SetPerforation(k.W, k.H)
		}
	}
	if eng != nil {
		e.scaled.SetEngine(eng)
		defer e.scaled.SetEngine(nil)
	}
	probs := e.scaled.Predict(inputs)
	e.scaled.ClearPerforation()
	return probs, entropy.Mean(probs)
}

// QuantSpec implements QuantExecutor: int8 and fp16 host GEMM modes with
// the compile package's modeled throughput factors and the documented
// entropy premiums.
func (e *PlanExecutor) QuantSpec(p tensor.Precision) (QuantSpec, bool) {
	switch p {
	case tensor.Int8:
		return QuantSpec{Speedup: compile.Int8GEMMSpeedup, EntropyDelta: Int8EntropyDelta}, true
	case tensor.FP16:
		return QuantSpec{Speedup: compile.FP16GEMMSpeedup, EntropyDelta: FP16EntropyDelta}, true
	}
	return QuantSpec{}, false
}

// PredictQuantMS implements QuantExecutor. Every Eq 12 term is linear in
// per-layer issue cost, so dividing the cached fp32 estimate by the
// mode's throughput factor equals compile.PredictMSQuant on the
// underlying plan — without a second (level, batch, precision) cache.
func (e *PlanExecutor) PredictQuantMS(p tensor.Precision, level, batch int) float64 {
	spec, ok := e.QuantSpec(p)
	if !ok || spec.Speedup <= 0 {
		return e.PredictMS(level, batch)
	}
	return e.PredictMS(level, batch) / spec.Speedup
}

// quantEngine returns (building lazily) the shared-pool GEMM engine for
// one reduced precision, mirroring the default engine's backend and
// threshold so quantization changes arithmetic, not parallel strategy.
func (e *PlanExecutor) quantEngine(p tensor.Precision) *tensor.Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	if eng, ok := e.quantEngines[p]; ok {
		return eng
	}
	d := tensor.Default()
	eng := tensor.NewEngine(d.Backend(), 0)
	eng.SetParallelThreshold(d.ParallelThreshold())
	eng.SetPrecision(p)
	if e.quantEngines == nil {
		e.quantEngines = map[tensor.Precision]*tensor.Engine{}
	}
	e.quantEngines[p] = eng
	return eng
}

// ExecuteQuant implements QuantExecutor: the simulated batch cost rescaled
// by the mode's modeled speedup (energy tracks time at roughly constant
// power), and — when an executable network is attached — real quantized
// classification through a reduced-precision engine, whose measured
// entropy feeds the calibration veto. Unsupported precisions degrade to
// the fp32 path rather than failing the batch.
func (e *PlanExecutor) ExecuteQuant(p tensor.Precision, level, batch int, inputs *tensor.Tensor) (BatchResult, error) {
	spec, ok := e.QuantSpec(p)
	if !ok {
		return e.Execute(level, batch, inputs)
	}
	if batch < 1 {
		return BatchResult{}, fmt.Errorf("serve: execute batch %d", batch)
	}
	level = e.clamp(level)
	agg, err := e.aggFor(level, batch)
	if err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{
		TimeMS:  agg.TimeMS / spec.Speedup,
		EnergyJ: agg.EnergyJ / spec.Speedup,
		Entropy: e.path[level].Entropy + spec.EntropyDelta,
	}
	if e.scaled != nil && inputs != nil && inputs.Dim(0) > 0 {
		probs, h := e.predictWith(e.quantEngine(p), level, inputs)
		res.Probs, res.Entropy = probs, h
	}
	return res, nil
}
