package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"pcnn/internal/satisfaction"
	"pcnn/internal/tensor"
)

// taskPtr returns a pointer for SubmitOptions.Task.
func taskPtr(t satisfaction.Task) *satisfaction.Task { return &t }

// TestPrioQueuesTakeOrder: cross-band formation picks interactive before
// real-time before background, admission order within a band, and counts
// no promotions when aging is disabled.
func TestPrioQueuesTakeOrder(t *testing.T) {
	base := epoch()
	q := &prioQueues{agingMS: -1}
	mk := func(id uint64, prio int, atMS float64) *request {
		return &request{id: id, prio: prio, at: base.Add(time.Duration(atMS * float64(time.Millisecond)))}
	}
	// Arrival order: two background, one surveillance, two interactive.
	q.push(mk(1, 2, 0))
	q.push(mk(2, 2, 1))
	q.push(mk(3, 1, 2))
	q.push(mk(4, 0, 3))
	q.push(mk(5, 0, 4))

	batch, promoted := q.take(3, base.Add(10*time.Millisecond))
	if promoted != 0 {
		t.Errorf("promoted = %d with aging disabled, want 0", promoted)
	}
	want := []uint64{4, 5, 3} // interactive pair first, then the surveillance head
	for i, r := range batch {
		if r.id != want[i] {
			t.Fatalf("take[%d] = request %d, want %d", i, r.id, want[i])
		}
	}
	if q.len() != 2 {
		t.Fatalf("queue left %d pending, want 2", q.len())
	}
	rest, _ := q.take(8, base.Add(10*time.Millisecond))
	if len(rest) != 2 || rest[0].id != 1 || rest[1].id != 2 {
		t.Fatalf("remaining batch = %v, want background 1 then 2", ids(rest))
	}
}

// TestPrioQueuesAging: a background request that has waited past its
// aging credit ties the fresh interactive arrival at effective priority 0
// and wins on arrival time — counted as a promotion.
func TestPrioQueuesAging(t *testing.T) {
	base := epoch()
	q := &prioQueues{agingMS: 5}
	bg := &request{id: 1, prio: 2, at: base}
	fg := &request{id: 2, prio: 0, at: base.Add(50 * time.Millisecond)}
	q.push(bg)
	q.push(fg)

	// At t=50 the background head has waited 50 ms = 10 aging quanta:
	// effective priority max(2-10, 0) = 0, tie with the interactive head,
	// earlier arrival wins.
	batch, promoted := q.take(1, base.Add(50*time.Millisecond))
	if len(batch) != 1 || batch[0].id != 1 {
		t.Fatalf("take = %v, want the aged background request", ids(batch))
	}
	if promoted != 1 {
		t.Errorf("promoted = %d, want 1", promoted)
	}

	// A fresh background arrival gets no credit: interactive goes first.
	q2 := &prioQueues{agingMS: 5}
	q2.push(&request{id: 3, prio: 2, at: base})
	q2.push(&request{id: 4, prio: 0, at: base.Add(time.Millisecond)})
	batch, promoted = q2.take(1, base.Add(2*time.Millisecond))
	if len(batch) != 1 || batch[0].id != 4 {
		t.Fatalf("take = %v, want the interactive request", ids(batch))
	}
	if promoted != 0 {
		t.Errorf("promoted = %d, want 0", promoted)
	}
}

func ids(reqs []*request) []uint64 {
	out := make([]uint64, len(reqs))
	for i, r := range reqs {
		out[i] = r.id
	}
	return out
}

// TestPriorityBatchFormation drives the full server on a virtual clock:
// a mixed backlog flushes as one cross-archetype batch of the most urgent
// bands first, background only afterwards — pinned by each request's
// exact virtual queueing time.
func TestPriorityBatchFormation(t *testing.T) {
	clk := &vclock{}
	clk.set(0)
	s, err := NewServer(manualExec{}, satisfaction.ImageTagging(), Config{
		Workers: 1, MaxBatch: 4, QueueCap: 16,
		ManualFlush: true, Clock: clk.now, AgingMS: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	age := satisfaction.AgeDetection()
	surv := satisfaction.VideoSurveillance(30)
	var bg, urgent []*Future
	submit := func(task *satisfaction.Task) *Future {
		f, err := s.SubmitWith(SubmitOptions{Task: task})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for i := 0; i < 4; i++ {
		bg = append(bg, submit(nil)) // deployed archetype: background tagging
	}
	urgent = append(urgent, submit(taskPtr(age)), submit(taskPtr(age)),
		submit(taskPtr(surv)), submit(taskPtr(surv)))

	clk.set(10)
	if n := s.FlushOne(); n != 4 {
		t.Fatalf("first FlushOne moved %d, want 4", n)
	}
	for i, f := range urgent {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("urgent %d: %v", i, err)
		}
		if res.QueueMS != 10 {
			t.Errorf("urgent %d queued %v ms, want 10 (first batch)", i, res.QueueMS)
		}
		if res.Batch != 4 {
			t.Errorf("urgent %d batch %d, want 4", i, res.Batch)
		}
	}

	clk.set(30)
	if n := s.FlushOne(); n != 4 {
		t.Fatalf("second FlushOne moved %d, want 4", n)
	}
	for i, f := range bg {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("background %d: %v", i, err)
		}
		if res.QueueMS != 30 {
			t.Errorf("background %d queued %v ms, want 30 (second batch)", i, res.QueueMS)
		}
	}
	if snap := s.Stats(); snap.Promotions != 0 {
		t.Errorf("promotions = %d with aging disabled, want 0", snap.Promotions)
	}
}

// TestAgingPromotionServing: with a short aging quantum, a starved
// background request overtakes a fresh interactive arrival and the
// promotion surfaces in the snapshot.
func TestAgingPromotionServing(t *testing.T) {
	clk := &vclock{}
	clk.set(0)
	s, err := NewServer(manualExec{}, satisfaction.ImageTagging(), Config{
		Workers: 1, MaxBatch: 1, QueueCap: 16,
		ManualFlush: true, Clock: clk.now, AgingMS: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fBG, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	clk.set(50)
	fIA, err := s.SubmitWith(SubmitOptions{Task: taskPtr(satisfaction.AgeDetection())})
	if err != nil {
		t.Fatal(err)
	}

	if n := s.FlushOne(); n != 1 {
		t.Fatalf("FlushOne moved %d, want 1", n)
	}
	res, err := fBG.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMS != 50 {
		t.Errorf("background queued %v ms, want 50 (flushed first)", res.QueueMS)
	}
	if n := s.FlushOne(); n != 1 {
		t.Fatalf("second FlushOne moved %d, want 1", n)
	}
	if _, err := fIA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if snap := s.Stats(); snap.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", snap.Promotions)
	}
}

// limitedExec decorates fakeExec with an explicit memory batch ceiling.
type limitedExec struct {
	*fakeExec
	limit int
}

func (l limitedExec) BatchLimit() int { return l.limit }

// TestBatchCap: the deadline-aware cap extends a tight compiled batch up
// to what the deadline can absorb, leaves deadline-free tasks at the
// executor's own batch, and respects the memory ceiling.
func TestBatchCap(t *testing.T) {
	// 3 ms per image at every level; surveillance at 60 fps gives a
	// 16.67 ms budget, so 5 images fit (15 ms) and 6 do not.
	ex := &fakeExec{maxBatch: 2, msPerImage: []float64{3}, entropies: []float64{0.1}}
	if got := BatchCap(ex, satisfaction.VideoSurveillance(60)); got != 5 {
		t.Errorf("BatchCap(surveillance@60) = %d, want 5", got)
	}
	// Background has no deadline: the compiled batch stands.
	if got := BatchCap(ex, satisfaction.ImageTagging()); got != 2 {
		t.Errorf("BatchCap(background) = %d, want executor's 2", got)
	}
	// A memory ceiling between the compiled batch and the deadline fit
	// wins over the deadline.
	lim := limitedExec{fakeExec: ex, limit: 3}
	if got := BatchCap(lim, satisfaction.VideoSurveillance(60)); got != 3 {
		t.Errorf("BatchCap(limited) = %d, want 3", got)
	}
	// A cap below the executor's own batch never shrinks it.
	slow := &fakeExec{maxBatch: 4, msPerImage: []float64{100}, entropies: []float64{0.1}}
	if got := BatchCap(slow, satisfaction.VideoSurveillance(60)); got != 4 {
		t.Errorf("BatchCap(slow) = %d, want the executor's 4", got)
	}
}

// failingExec fails every batch.
type failingExec struct{ fakeExec }

func (f *failingExec) Execute(l, n int, _ *tensor.Tensor) (BatchResult, error) {
	return BatchResult{}, errFailingExec
}

var errFailingExec = errTest("failing executor")

type errTest string

func (e errTest) Error() string { return string(e) }

// TestMeanBatchAccounting pins the executed-batch population: MeanBatch
// is the exact per-flush mean, the batch-size histogram counts the same
// batches, and a failed batch lands in neither.
func TestMeanBatchAccounting(t *testing.T) {
	clk := &vclock{}
	clk.set(0)
	s, err := NewServer(manualExec{}, satisfaction.ImageTagging(), Config{
		Workers: 1, MaxBatch: 4, QueueCap: 16,
		ManualFlush: true, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)

	var futs []*Future
	for i := 0; i < 7; i++ {
		f, err := s.Submit()
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if n := s.FlushOne(); n != 4 {
		t.Fatalf("first flush moved %d, want 4", n)
	}
	if n := s.FlushOne(); n != 3 {
		t.Fatalf("second flush moved %d, want 3", n)
	}
	waitAll(t, futs)

	snap := s.Stats()
	if snap.Batches != 2 {
		t.Fatalf("batches = %d, want 2", snap.Batches)
	}
	if want := 3.5; snap.MeanBatch != want {
		t.Errorf("mean batch = %v, want exactly %v", snap.MeanBatch, want)
	}
	var count uint64
	var sum float64
	for _, h := range s.met.batchSize {
		count += h.Count()
		sum += h.Sum()
	}
	if count != snap.Batches {
		t.Errorf("batch-size histogram count %d != batches %d", count, snap.Batches)
	}
	if sum != 7 {
		t.Errorf("batch-size histogram sum %v != 7 coalesced requests", sum)
	}

	// A failed batch must move neither the tally nor the histogram.
	fs, err := NewServer(&failingExec{fakeExec{maxBatch: 4, msPerImage: []float64{1}, entropies: []float64{0.1}}},
		satisfaction.ImageTagging(), Config{
			Workers: 1, MaxBatch: 4, QueueCap: 16,
			ManualFlush: true, Clock: clk.now,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, fs)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f1, err := fs.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if n := fs.FlushOne(); n != 1 {
		t.Fatalf("flush moved %d, want 1", n)
	}
	if _, err := f1.Wait(ctx); err == nil {
		t.Fatal("failed batch resolved without error")
	}
	fsnap := fs.Stats()
	if fsnap.Batches != 0 || fsnap.MeanBatch != 0 {
		t.Errorf("failed batch counted: batches=%d mean=%v", fsnap.Batches, fsnap.MeanBatch)
	}
	if fsnap.Failed != 1 {
		t.Errorf("failed = %d, want 1", fsnap.Failed)
	}
	var fcount uint64
	for _, h := range fs.met.batchSize {
		fcount += h.Count()
	}
	if fcount != 0 {
		t.Errorf("failed batch reached the batch-size histogram (count %d)", fcount)
	}
}

// TestConcurrentClientsCoalesce is the cross-stream tentpole under the
// race detector: concurrent clients of mixed archetypes land in shared
// batches (occupancy above one), and the conservation invariant holds
// exactly after a full drain.
func TestConcurrentClientsCoalesce(t *testing.T) {
	ex := &fakeExec{maxBatch: 8, msPerImage: []float64{4, 2}, entropies: []float64{0.1, 0.2}}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{Workers: 2, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 25
	tasks := []*satisfaction.Task{nil, taskPtr(satisfaction.AgeDetection()), nil, taskPtr(satisfaction.VideoSurveillance(30))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var futs []*Future
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				f, err := s.SubmitWith(SubmitOptions{Task: tasks[c%len(tasks)]})
				if err != nil {
					continue // queue-full under burst is legal; conservation still holds
				}
				mu.Lock()
				futs = append(futs, f)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, f := range futs {
		f.Wait(ctx)
	}
	closeServer(t, s)

	snap := s.Stats()
	if snap.Submitted != snap.Completed+snap.Failed {
		t.Fatalf("conservation broken after drain: submitted %d != completed %d + failed %d",
			snap.Submitted, snap.Completed, snap.Failed)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", snap.QueueDepth)
	}
	if snap.Batches == 0 || snap.MeanBatch <= 1 {
		t.Errorf("no cross-stream coalescing: %d batches, mean %v", snap.Batches, snap.MeanBatch)
	}
}
