package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"pcnn/internal/obs"
	"pcnn/internal/satisfaction"
)

// latSample bounds the latency reservoir; beyond it the ring overwrites
// the oldest samples so percentiles track recent behaviour.
const latSample = 16384

// throughputWindowSec is the sliding window ThroughputRPS is computed
// over. Idle periods older than this age out of the reported rate; the
// lifetime average stays available as LifetimeRPS.
const throughputWindowSec = 30

// rejectReason tags why admission refused a request; the values index
// stats.rejects and label pcnn_serve_rejected_total.
type rejectReason int

const (
	rejectQueueFull rejectReason = iota
	rejectUnmeetable
	rejectSaturated
	numRejectReasons
)

// String names the reason the way the metric label does.
func (r rejectReason) String() string {
	switch r {
	case rejectQueueFull:
		return "queue_full"
	case rejectUnmeetable:
		return "unmeetable"
	case rejectSaturated:
		return "saturated"
	}
	return "unknown"
}

// stats accumulates serving metrics. All methods are safe for concurrent
// use.
type stats struct {
	mu        sync.Mutex
	now       func() time.Time
	start     time.Time
	win       *obs.RateWindow
	submitted uint64
	rejected  uint64
	rejects   [numRejectReasons]uint64
	completed uint64
	failed    uint64
	batches   uint64
	batchSum  uint64
	quantized uint64 // batches executed on the quantization rung
	missed    uint64
	promoted  uint64 // requests batched ahead of a more urgent band via aging
	demoted   uint64 // batches demoted to simulation-only by gatherInputs
	retries   uint64 // batch execution attempts retried after a failure
	timeouts  uint64 // attempts cut off by the per-attempt timeout
	// inQueue counts requests accepted but not yet resolved. It moves
	// under the same mutex as submitted/completed/failed, so snapshots
	// satisfy submitted == completed + failed + inQueue exactly — the
	// conservation invariant the chaos soak test asserts at every sample.
	inQueue uint64

	energyJ    float64
	socSum     float64
	entropySum float64

	lat    []float64
	latIdx int
}

func newStats() *stats { return newStatsClock(time.Now) }

// newStatsClock injects the clock; tests use it to exercise idle gaps
// without sleeping.
func newStatsClock(now func() time.Time) *stats {
	return &stats{
		now:   now,
		start: now(),
		win:   obs.NewRateWindow(throughputWindowSec, now),
	}
}

func (s *stats) submittedInc() {
	s.mu.Lock()
	s.submitted++
	s.inQueue++
	s.mu.Unlock()
}

// retryInc counts one retried execution attempt.
func (s *stats) retryInc() {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}

// timeoutInc counts one attempt killed by the execution timeout.
func (s *stats) timeoutInc() {
	s.mu.Lock()
	s.timeouts++
	s.mu.Unlock()
}

// queueDepth reads the accepted-but-unresolved request count.
func (s *stats) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.inQueue)
}

func (s *stats) rejectedInc(reason rejectReason) {
	s.mu.Lock()
	s.rejected++
	s.rejects[reason]++
	s.mu.Unlock()
}

// promotedAdd counts requests the aging policy batched ahead of a
// natively more urgent band's waiting head.
func (s *stats) promotedAdd(n uint64) {
	s.mu.Lock()
	s.promoted += n
	s.mu.Unlock()
}

// demotedInc counts one batch silently demoted to simulation-only
// classification (heterogeneous or partially missing input samples).
func (s *stats) demotedInc() {
	s.mu.Lock()
	s.demoted++
	s.mu.Unlock()
}

// record folds one completed request's result in.
func (s *stats) record(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed++
	if s.inQueue > 0 {
		s.inQueue--
	}
	s.win.Add(1)
	if !r.DeadlineMet {
		s.missed++
	}
	s.energyJ += r.EnergyPerImageJ
	s.socSum += r.SoC
	s.entropySum += r.Entropy
	if len(s.lat) < latSample {
		s.lat = append(s.lat, r.ResponseMS)
	} else {
		s.lat[s.latIdx] = r.ResponseMS
		s.latIdx = (s.latIdx + 1) % latSample
	}
}

// batchDone records one executed batch of n requests, quantized when it
// rode the quant rung.
func (s *stats) batchDone(n int, quant bool) {
	s.mu.Lock()
	s.batches++
	s.batchSum += uint64(n)
	if quant {
		s.quantized++
	}
	s.mu.Unlock()
}

// batchCount reads the executed-batch tally alone — the cheap accessor
// behind Server.BatchCount.
func (s *stats) batchCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// failBatch records n requests whose batch execution errored.
func (s *stats) failBatch(n int) {
	s.mu.Lock()
	s.failed += uint64(n)
	if s.inQueue >= uint64(n) {
		s.inQueue -= uint64(n)
	} else {
		s.inQueue = 0
	}
	s.mu.Unlock()
}

// windowedRPS is the completion rate over the last throughputWindowSec
// seconds.
func (s *stats) windowedRPS() float64 { return s.win.Rate() }

// lifetimeRPS is completions ÷ uptime, the value ThroughputRPS used to
// (incorrectly) report.
func (s *stats) lifetimeRPS() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lifetimeRPSLocked()
}

func (s *stats) lifetimeRPSLocked() float64 {
	if s.completed == 0 {
		return 0
	}
	elapsed := s.now().Sub(s.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.completed) / elapsed
}

// counterFn returns an export-time reader of one tallied value, for the
// registry's CounterFunc bridge.
func (s *stats) counterFn(read func(*stats) uint64) func() float64 {
	return func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(read(s))
	}
}

// Snapshot is a point-in-time view of a server's serving metrics.
type Snapshot struct {
	Task  string `json:"task"`
	Class string `json:"class"`

	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// The per-reason rejection split: queue at capacity, slack-aware early
	// rejection (ErrDeadlineUnmeetable), and injected saturation faults.
	// They sum to Rejected.
	RejectedQueueFull  uint64 `json:"rejected_queue_full"`
	RejectedUnmeetable uint64 `json:"rejected_unmeetable"`
	RejectedSaturated  uint64 `json:"rejected_saturated"`
	Completed          uint64 `json:"completed"`
	Failed             uint64 `json:"failed"`
	Batches            uint64 `json:"batches"`
	DemotedBatches     uint64 `json:"demoted_batches"`

	MeanBatch float64 `json:"mean_batch"`
	// ThroughputRPS is the completion rate over the last
	// throughputWindowSec seconds; LifetimeRPS is completions ÷ uptime.
	ThroughputRPS float64 `json:"throughput_rps"`
	LifetimeRPS   float64 `json:"lifetime_rps"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`

	// DeadlineMissed is the absolute count behind DeadlineMissRate, so
	// drivers can report rejected-vs-missed separately without deriving
	// counts from a float rate.
	DeadlineMissed   uint64  `json:"deadline_missed"`
	DeadlineMissRate float64 `json:"deadline_miss_rate"`
	// Promotions counts requests the aging policy batched ahead of a
	// natively more urgent band (starvation-free priority queues).
	Promotions      uint64  `json:"priority_promotions"`
	MeanSoC         float64 `json:"mean_soc"`
	MeanEntropy     float64 `json:"mean_entropy"`
	EnergyPerImageJ float64 `json:"energy_per_image_j"`

	Level        int    `json:"level"`
	QueueDepth   int    `json:"queue_depth"`
	Escalations  uint64 `json:"escalations"`
	Calibrations uint64 `json:"calibrations"`
	Recoveries   uint64 `json:"recoveries"`

	// Quantization-rung state: whether the rung is serving right now, how
	// many batches executed quantized, and the rung's own escalation /
	// calibration-veto tallies (all zero when the rung never armed).
	Quantized         bool   `json:"quantized,omitempty"`
	QuantizedBatches  uint64 `json:"quantized_batches,omitempty"`
	QuantEscalations  uint64 `json:"quant_escalations,omitempty"`
	QuantCalibrations uint64 `json:"quant_calibrations,omitempty"`

	// Hardening counters: execution retries, per-attempt timeouts, and
	// the circuit breaker's state and lifetime transitions.
	Retries       uint64 `json:"retries"`
	ExecTimeouts  uint64 `json:"exec_timeouts"`
	BreakerState  string `json:"breaker_state"`
	BreakerTrips  uint64 `json:"breaker_trips"`
	BreakerResets uint64 `json:"breaker_resets"`
}

// snapshot assembles the exported view. QueueDepth comes from the
// mutex-guarded inQueue tally, so Submitted == Completed + Failed +
// QueueDepth holds in every snapshot.
func (s *stats) snapshot(task satisfaction.Task, level int, esc, cal, rec uint64,
	brkState BreakerState, trips, resets uint64) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Task:               task.Name,
		Class:              task.Class.String(),
		Submitted:          s.submitted,
		Rejected:           s.rejected,
		RejectedQueueFull:  s.rejects[rejectQueueFull],
		RejectedUnmeetable: s.rejects[rejectUnmeetable],
		RejectedSaturated:  s.rejects[rejectSaturated],
		Completed:          s.completed,
		Failed:             s.failed,
		Batches:            s.batches,
		DemotedBatches:     s.demoted,
		QuantizedBatches:   s.quantized,
		DeadlineMissed:     s.missed,
		Promotions:         s.promoted,
		Level:              level,
		QueueDepth:         int(s.inQueue),
		Escalations:        esc,
		Calibrations:       cal,
		Recoveries:         rec,
		Retries:            s.retries,
		ExecTimeouts:       s.timeouts,
		BreakerState:       brkState.String(),
		BreakerTrips:       trips,
		BreakerResets:      resets,
	}
	if s.batches > 0 {
		snap.MeanBatch = float64(s.batchSum) / float64(s.batches)
	}
	if s.completed > 0 {
		snap.ThroughputRPS = s.win.Rate()
		snap.LifetimeRPS = s.lifetimeRPSLocked()
		snap.DeadlineMissRate = float64(s.missed) / float64(s.completed)
		snap.MeanSoC = s.socSum / float64(s.completed)
		snap.MeanEntropy = s.entropySum / float64(s.completed)
		snap.EnergyPerImageJ = s.energyJ / float64(s.completed)
	}
	snap.P50MS, snap.P95MS, snap.P99MS = percentiles(s.lat)
	return snap
}

// percentiles returns the 50th/95th/99th percentiles of the sample.
func percentiles(sample []float64) (p50, p95, p99 float64) {
	if len(sample) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99)
}
