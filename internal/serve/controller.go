package serve

import "sync"

// controller owns the degradation level shared by the batcher and the
// worker pool. It is the event-driven form of the paper's run-time
// management loop: the batcher *escalates* (deeper perforation, faster,
// less accurate) when the oldest request's slack goes negative, and the
// workers *calibrate* — backtrack one level along the path, exactly the
// runtimemgr.Manager move — when a batch's measured entropy crosses the
// user's threshold. A calibration also pins a ceiling one level down for
// a cooldown window so the very next flush cannot immediately re-escalate
// into the level that just proved too uncertain.
type controller struct {
	mu           sync.Mutex
	level        int
	base         int // preferred point: most aggressive level within the entropy threshold
	max          int
	ceiling      int // calibration-imposed escalation cap
	cooldown     int // flushes left until the ceiling releases
	recoverAfter int
	confident    int

	escalations  uint64
	calibrations uint64
	recoveries   uint64
}

func newController(levels, base, recoverAfter int) *controller {
	if levels < 1 {
		levels = 1
	}
	max := levels - 1
	if base < 0 {
		base = 0
	}
	if base > max {
		base = max
	}
	return &controller{
		level:        base,
		base:         base,
		max:          max,
		ceiling:      max,
		recoverAfter: recoverAfter,
	}
}

// Level returns the current degradation level.
func (c *controller) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Base returns the preferred operating point the controller recovers
// toward.
func (c *controller) Base() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// reachable returns the deepest level escalation can currently use: the
// path's end normally, or the calibration-imposed ceiling while a
// backtrack cooldown holds. Admission prices its early-rejection check
// here — a level entropy calibration has fenced off cannot save anyone.
func (c *controller) reachable() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ceiling
}

// escalate raises the level until fits(level) reports the flush would meet
// its deadline, or the (possibly calibration-lowered) ceiling stops it. It
// returns the level the flush executes at. The path is ordered by the
// offline tuner's TE ranking (Eq 14), so the first fitting level is the
// cheapest escalation in entropy terms.
func (c *controller) escalate(fits func(level int) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !fits(c.level) && c.level < c.ceiling {
		c.level++
		c.escalations++
	}
	return c.level
}

// observe folds one executed batch's signals back into the level.
// entropyExceeded triggers the calibration backtrack; comfortable batches
// (ample slack) accumulate toward easing an escalated level back toward
// the base point.
func (c *controller) observe(entropyExceeded, comfortable bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cooldown > 0 {
		c.cooldown--
		if c.cooldown == 0 {
			c.ceiling = c.max
		}
	}
	switch {
	case entropyExceeded && c.level > 0:
		c.level--
		c.calibrations++
		c.ceiling = c.level
		c.cooldown = c.recoverAfter
		c.confident = 0
	case comfortable && c.level > c.base:
		c.confident++
		if c.confident >= c.recoverAfter {
			c.level--
			c.recoveries++
			c.confident = 0
		}
	default:
		c.confident = 0
	}
}

// counts returns the lifetime escalation / calibration / recovery tallies.
func (c *controller) counts() (escalations, calibrations, recoveries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.escalations, c.calibrations, c.recoveries
}
