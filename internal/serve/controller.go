package serve

import "sync"

// controller owns the degradation level shared by the batcher and the
// worker pool. It is the event-driven form of the paper's run-time
// management loop: the batcher *escalates* (deeper perforation, faster,
// less accurate) when the oldest request's slack goes negative, and the
// workers *calibrate* — backtrack one level along the path, exactly the
// runtimemgr.Manager move — when a batch's measured entropy crosses the
// user's threshold. A calibration also pins a ceiling one level down for
// a cooldown window so the very next flush cannot immediately re-escalate
// into the level that just proved too uncertain.
type controller struct {
	mu           sync.Mutex
	level        int
	base         int // preferred point: most aggressive level within the entropy threshold
	max          int
	ceiling      int // calibration-imposed escalation cap
	cooldown     int // flushes left until the ceiling (and quant veto) release
	recoverAfter int
	confident    int

	// The quantization rung. When enabled, escalation switches the host
	// GEMMs to reduced precision *before* deepening perforation — the
	// quant rung costs less entropy than another level of perforation, so
	// it is the cheapest escalation on the ladder. A batch whose measured
	// entropy crosses the threshold while quantized blames the most recent
	// rung first: quant switches off and is *vetoed* for a cooldown
	// window, exactly as a level calibration pins the ceiling.
	quantEnabled bool
	quant        bool
	quantVeto    bool

	escalations  uint64
	calibrations uint64
	recoveries   uint64

	quantEscalations  uint64
	quantCalibrations uint64
}

func newController(levels, base, recoverAfter int, quantEnabled bool) *controller {
	if levels < 1 {
		levels = 1
	}
	max := levels - 1
	if base < 0 {
		base = 0
	}
	if base > max {
		base = max
	}
	return &controller{
		level:        base,
		base:         base,
		max:          max,
		ceiling:      max,
		recoverAfter: recoverAfter,
		quantEnabled: quantEnabled,
	}
}

// Level returns the current degradation level.
func (c *controller) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Base returns the preferred operating point the controller recovers
// toward.
func (c *controller) Base() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// Quant reports whether batches currently execute quantized.
func (c *controller) Quant() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quant
}

// reachable returns the deepest operating point escalation can currently
// use: the path's end normally, or the calibration-imposed ceiling while
// a backtrack cooldown holds, plus whether the quant rung could serve
// (enabled, and either already on or not vetoed). Admission prices its
// early-rejection check here — a rung entropy calibration has fenced off
// cannot save anyone.
func (c *controller) reachable() (level int, quant bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ceiling, c.quantEnabled && (c.quant || !c.quantVeto)
}

// escalate raises the operating point until fits(level, quant) reports the
// flush would meet its deadline, or the (possibly calibration-lowered)
// ceiling stops it. It returns the point the flush executes at. The quant
// rung is tried before any perforation step — quantize-before-perforate:
// reduced precision costs less entropy than deeper perforation, so it is
// the cheapest rung on the ladder — unless an entropy calibration has
// vetoed it for the cooldown window. The level path is ordered by the
// offline tuner's TE ranking (Eq 14), so within perforation the first
// fitting level is likewise the cheapest escalation in entropy terms.
func (c *controller) escalate(fits func(level int, quant bool) bool) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !fits(c.level, c.quant) {
		if c.quantEnabled && !c.quant && !c.quantVeto {
			c.quant = true
			c.quantEscalations++
			continue
		}
		if c.level >= c.ceiling {
			break
		}
		c.level++
		c.escalations++
	}
	return c.level, c.quant
}

// observe folds one executed batch's signals back into the level.
// entropyExceeded triggers the calibration backtrack; comfortable batches
// (ample slack) accumulate toward easing an escalated level back toward
// the base point.
func (c *controller) observe(entropyExceeded, comfortable bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cooldown > 0 {
		c.cooldown--
		if c.cooldown == 0 {
			c.ceiling = c.max
			c.quantVeto = false
		}
	}
	switch {
	case entropyExceeded && c.quant:
		// Blame the most recently added rung first: quantization switches
		// off and is vetoed for the cooldown window, so the very next
		// flush cannot re-enter the precision that just proved too
		// uncertain. Perforation backtracks only if entropy stays high at
		// full precision.
		c.quant = false
		c.quantVeto = true
		c.quantCalibrations++
		c.cooldown = c.recoverAfter
		c.confident = 0
	case entropyExceeded && c.level > 0:
		c.level--
		c.calibrations++
		c.ceiling = c.level
		c.cooldown = c.recoverAfter
		c.confident = 0
	case comfortable && (c.level > c.base || c.quant):
		c.confident++
		if c.confident >= c.recoverAfter {
			// Recovery unwinds the ladder in reverse: perforation eases
			// back toward base first, the quant rung releases last.
			if c.level > c.base {
				c.level--
			} else {
				c.quant = false
			}
			c.recoveries++
			c.confident = 0
		}
	default:
		c.confident = 0
	}
}

// counts returns the lifetime escalation / calibration / recovery tallies.
func (c *controller) counts() (escalations, calibrations, recoveries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.escalations, c.calibrations, c.recoveries
}

// quantCounts returns the quant rung's lifetime escalation / calibration
// tallies.
func (c *controller) quantCounts() (escalations, calibrations uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quantEscalations, c.quantCalibrations
}
