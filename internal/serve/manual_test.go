package serve

import (
	"context"
	"testing"
	"time"

	"pcnn/internal/satisfaction"
	"pcnn/internal/tensor"
)

// vclock is a settable clock for virtual-time serving tests.
type vclock struct{ t time.Time }

func (c *vclock) now() time.Time { return c.t }
func (c *vclock) set(ms float64) { c.t = epoch().Add(time.Duration(ms * float64(time.Millisecond))) }
func epoch() time.Time           { return time.Unix(1_700_000_000, 0) }

// manualExec is a fixed-cost executor for virtual-time tests.
type manualExec struct{}

func (manualExec) MaxBatch() int              { return 4 }
func (manualExec) Levels() int                { return 2 }
func (manualExec) Entropy(int) float64        { return 0.1 }
func (manualExec) PredictMS(l, n int) float64 { return 5 * float64(n) }
func (manualExec) Execute(l, n int, _ *tensor.Tensor) (BatchResult, error) {
	return BatchResult{TimeMS: 5 * float64(n), EnergyJ: 0.01 * float64(n), Entropy: 0.1}, nil
}

// TestManualFlushVirtualClock pins the virtual-time contract the scenario
// engine depends on: with ManualFlush and an injected clock, requests are
// stamped at the clock value current at Submit, the batch executes at the
// clock value current at Flush, and QueueMS/ResponseMS are exact virtual
// quantities with no wall-clock contribution.
func TestManualFlushVirtualClock(t *testing.T) {
	clk := &vclock{}
	clk.set(0)
	s, err := NewServer(manualExec{}, satisfaction.AgeDetection(), Config{
		Workers: 1, MaxBatch: 4, QueueCap: 16,
		ManualFlush: true, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Three requests arriving at virtual t = 0, 10, 25 ms.
	arrive := []float64{0, 10, 25}
	futs := make([]*Future, len(arrive))
	for i, at := range arrive {
		clk.set(at)
		f, err := s.Submit()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs[i] = f
	}

	// Nothing may execute before Flush, however long we wait.
	time.Sleep(20 * time.Millisecond)
	if got := s.Stats().Batches; got != 0 {
		t.Fatalf("batcher flushed %d batches before Flush", got)
	}

	// The batch executes at virtual t = 40 ms.
	clk.set(40)
	if n := s.Flush(); n != 3 {
		t.Fatalf("Flush moved %d requests, want 3", n)
	}
	for i, f := range futs {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		wantQueue := 40 - arrive[i]
		if res.QueueMS != wantQueue {
			t.Errorf("request %d QueueMS = %v, want exactly %v", i, res.QueueMS, wantQueue)
		}
		if want := wantQueue + 15; res.ResponseMS != want {
			t.Errorf("request %d ResponseMS = %v, want exactly %v", i, res.ResponseMS, want)
		}
		if res.Batch != 3 {
			t.Errorf("request %d batch = %d, want 3", i, res.Batch)
		}
	}
	closeServer(t, s)
	// Flush after close is a no-op, not a hang.
	if n := s.Flush(); n != 0 {
		t.Errorf("Flush after close moved %d requests", n)
	}
}

// TestManualFlushChunksToMaxBatch: a manual flush larger than MaxBatch is
// split into admission-order chunks of at most MaxBatch.
func TestManualFlushChunksToMaxBatch(t *testing.T) {
	clk := &vclock{}
	clk.set(0)
	s, err := NewServer(manualExec{}, satisfaction.ImageTagging(), Config{
		Workers: 1, MaxBatch: 4, QueueCap: 16,
		ManualFlush: true, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var futs []*Future
	for i := 0; i < 10; i++ {
		f, err := s.Submit()
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if n := s.Flush(); n != 10 {
		t.Fatalf("Flush moved %d, want 10", n)
	}
	sizes := map[int]int{}
	for _, f := range futs {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sizes[res.Batch]++
	}
	// 10 requests at cap 4 → batches of 4, 4, 2.
	if sizes[4] != 8 || sizes[2] != 2 {
		t.Fatalf("batch sizes %v, want 8 requests in 4s and 2 in a 2", sizes)
	}
	closeServer(t, s)
}
