package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcnn/internal/fault"
	"pcnn/internal/satisfaction"
	"pcnn/internal/tensor"
	"pcnn/internal/workload"
)

// flakyExec fails Execute while `failing` is set (or for the first
// failFirst calls), then serves cleanly.
type flakyExec struct {
	maxBatch  int
	failing   atomic.Bool
	failFirst int64
	calls     atomic.Int64
	execMS    float64
	sleep     time.Duration
}

var errFlaky = errors.New("flaky executor down")

func (f *flakyExec) MaxBatch() int              { return f.maxBatch }
func (f *flakyExec) Levels() int                { return 2 }
func (f *flakyExec) Entropy(int) float64        { return 0.1 }
func (f *flakyExec) PredictMS(_, n int) float64 { return f.execMS * float64(n) }

func (f *flakyExec) Execute(_, n int, _ *tensor.Tensor) (BatchResult, error) {
	c := f.calls.Add(1)
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if f.failing.Load() || c <= f.failFirst {
		return BatchResult{}, errFlaky
	}
	return BatchResult{TimeMS: f.execMS * float64(n), EnergyJ: 0.1, Entropy: 0.1}, nil
}

// TestRetryResolvesAfterTransientFailure: a batch whose first attempt
// fails still resolves successfully through the bounded retry loop, and
// the retry is counted.
func TestRetryResolvesAfterTransientFailure(t *testing.T) {
	ex := &flakyExec{maxBatch: 4, failFirst: 1, execMS: 1}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{
		Workers: 1, LingerMS: 1, MaxRetries: 3, RetryBaseMS: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	res := waitAll(t, []*Future{fut})
	if res[0].ExecMS <= 0 {
		t.Fatalf("result %+v from retried batch", res[0])
	}
	closeServer(t, s)
	snap := s.Stats()
	if snap.Retries < 1 {
		t.Fatalf("Retries = %d, want ≥ 1", snap.Retries)
	}
	if snap.Failed != 0 || snap.Completed != 1 {
		t.Fatalf("completed %d failed %d, want 1 and 0", snap.Completed, snap.Failed)
	}
}

// TestNoResolutionAfterCloseDrain is the -race regression for the
// drain-on-Close guarantee: with retries, timeouts and failures all in
// play, once Close returns every accepted future holds exactly one
// buffered outcome — none lost, none resolved twice, and nothing can
// resolve later because only the (now exited) workers touch futures.
func TestNoResolutionAfterCloseDrain(t *testing.T) {
	ex := &flakyExec{maxBatch: 4, execMS: 0.5, sleep: 200 * time.Microsecond}
	ex.failing.Store(true)
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{
		Workers: 3, LingerMS: 1, MaxRetries: 2, RetryBaseMS: 0.1,
		ExecTimeoutMS: 50, BreakerThreshold: 5, BreakerCooldownMS: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for i := 0; i < 64; i++ {
		f, err := s.Submit()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, f)
		if i == 32 {
			ex.failing.Store(false) // heal mid-stream: mixed outcomes
		}
	}
	closeServer(t, s)
	for i, f := range futs {
		if got := len(f.ch); got != 1 {
			t.Fatalf("future %d holds %d outcomes after drain, want exactly 1", i, got)
		}
	}
	// A second receive finding the channel empty proves single resolution.
	for i, f := range futs {
		<-f.ch
		select {
		case <-f.ch:
			t.Fatalf("future %d resolved twice", i)
		default:
		}
	}
	snap := s.Stats()
	if snap.Submitted != snap.Completed+snap.Failed {
		t.Fatalf("drain leaked requests: submitted %d != completed %d + failed %d",
			snap.Submitted, snap.Completed, snap.Failed)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", snap.QueueDepth)
	}
}

// TestExecTimeoutFailsAttempt: an executor outrunning the per-attempt
// timeout fails the batch with ErrExecTimeout, and the orphaned attempt
// finishing later resolves nothing.
func TestExecTimeoutFailsAttempt(t *testing.T) {
	ex := &flakyExec{maxBatch: 2, execMS: 1, sleep: 150 * time.Millisecond}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{
		Workers: 1, LingerMS: 1, ExecTimeoutMS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := fut.Wait(ctx); !errors.Is(err, ErrExecTimeout) {
		t.Fatalf("Wait err = %v, want ErrExecTimeout", err)
	}
	closeServer(t, s)
	snapBefore := s.Stats()
	if snapBefore.ExecTimeouts < 1 {
		t.Fatalf("ExecTimeouts = %d, want ≥ 1", snapBefore.ExecTimeouts)
	}
	// Let the orphaned Execute goroutine finish into its discarded
	// channel; nothing about the resolved state may change.
	time.Sleep(200 * time.Millisecond)
	if snapAfter := s.Stats(); snapAfter.Completed != snapBefore.Completed ||
		snapAfter.Failed != snapBefore.Failed {
		t.Fatalf("orphaned attempt changed stats: %+v then %+v", snapBefore, snapAfter)
	}
	if len(fut.ch) != 0 {
		t.Fatal("orphaned attempt resolved the future a second time")
	}
}

// TestBreakerLifecycleServing drives the serve-level breaker through
// closed → open → half-open → closed and checks the state is observable
// through Stats and the Prometheus exposition.
func TestBreakerLifecycleServing(t *testing.T) {
	ex := &flakyExec{maxBatch: 1, execMS: 0.5}
	ex.failing.Store(true)
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{
		Workers: 1, LingerMS: 0.5, BreakerThreshold: 2, BreakerCooldownMS: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	submitWait := func() error {
		fut, err := s.Submit()
		if err != nil {
			return err
		}
		_, err = fut.Wait(ctx)
		return err
	}

	// Two consecutive batch failures trip the breaker.
	for i := 0; i < 2; i++ {
		if err := submitWait(); !errors.Is(err, errFlaky) {
			t.Fatalf("batch %d err = %v, want executor failure", i, err)
		}
	}
	if st := s.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker %v after threshold failures, want open", st)
	}
	// While open, batches fail fast without reaching the executor.
	calls := ex.calls.Load()
	if err := submitWait(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v during open window, want ErrBreakerOpen", err)
	}
	if ex.calls.Load() != calls {
		t.Fatal("open breaker let an attempt through to the executor")
	}
	snap := s.Stats()
	if snap.BreakerState != "open" || snap.BreakerTrips != 1 {
		t.Fatalf("snapshot breaker %q trips %d, want open/1", snap.BreakerState, snap.BreakerTrips)
	}

	// Heal, wait out the cooldown: the next batch is the half-open probe
	// and closes the breaker.
	ex.failing.Store(false)
	time.Sleep(30 * time.Millisecond)
	if err := submitWait(); err != nil {
		t.Fatalf("probe batch failed: %v", err)
	}
	if st := s.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	for _, want := range []string{
		"pcnn_serve_breaker_state 0",
		"pcnn_serve_breaker_trips_total 1",
		"pcnn_serve_breaker_resets_total 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSoakConservation is the race-enabled soak: Poisson arrivals against
// a faulty executor (injected launch failures, slow batches, admission
// saturation, clock skew) while a sampler asserts the conservation
// invariant Submitted == Completed + Failed + QueueDepth on every
// concurrent snapshot.
func TestSoakConservation(t *testing.T) {
	duration := 2 * time.Second
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	ex := &flakyExec{maxBatch: 8, execMS: 0.2}
	inj := fault.MustNew(fault.Spec{
		Seed: 11, Launch: 0.05, Slow: 0.05, SlowFactor: 3, Saturate: 0.02, SkewMS: 1,
	})
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{
		Workers: 2, LingerMS: 1, QueueCap: 256,
		MaxRetries: 1, RetryBaseMS: 0.1, BreakerThreshold: 8, BreakerCooldownMS: 10,
		Faults: inj, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	var violations atomic.Int64
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Stats()
			if snap.Submitted != snap.Completed+snap.Failed+uint64(snap.QueueDepth) {
				violations.Add(1)
				t.Errorf("conservation violated: submitted %d != completed %d + failed %d + queued %d",
					snap.Submitted, snap.Completed, snap.Failed, snap.QueueDepth)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	arr := workload.NewOpenArrivals(400, 7)
	deadline := time.Now().Add(duration)
	var futs []*Future
	var rejected int
	for time.Now().Before(deadline) {
		f, err := s.Submit()
		switch {
		case err == nil:
			futs = append(futs, f)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("submit: %v", err)
		}
		time.Sleep(arr.Next())
	}
	closeServer(t, s)
	close(stop)
	sampler.Wait()

	if violations.Load() > 0 {
		t.Fatalf("%d conservation violations during soak", violations.Load())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil &&
			!errors.Is(err, errFlaky) && !errors.Is(err, ErrBreakerOpen) &&
			!errors.Is(err, fault.ErrInjected) {
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
	snap := s.Stats()
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", snap.QueueDepth)
	}
	if got := snap.Completed + snap.Failed; got != uint64(len(futs)) {
		t.Fatalf("resolved %d of %d accepted requests", got, len(futs))
	}
	if snap.Submitted < 10 {
		t.Fatalf("soak too idle: only %d submissions", snap.Submitted)
	}
	t.Logf("soak: %d submitted, %d completed, %d failed, %d rejected, faults %+v",
		snap.Submitted, snap.Completed, snap.Failed, rejected, s.FaultCounts())
}

// cleanExec is an allocation-free executor for the hot-path guard.
type cleanExec struct{}

func (cleanExec) MaxBatch() int              { return 4 }
func (cleanExec) Levels() int                { return 1 }
func (cleanExec) Entropy(int) float64        { return 0.1 }
func (cleanExec) PredictMS(_, n int) float64 { return float64(n) }
func (cleanExec) Execute(_, n int, _ *tensor.Tensor) (BatchResult, error) {
	return BatchResult{TimeMS: float64(n), EnergyJ: 0.1, Entropy: 0.1}, nil
}

// TestExecuteBatchCleanNoAllocs guards the acceptance criterion that the
// disabled hardening stack (nil injector, no breaker, no timeout, no
// retries) adds zero allocations to the executor hot path.
func TestExecuteBatchCleanNoAllocs(t *testing.T) {
	s, err := NewServer(cleanExec{}, satisfaction.ImageTagging(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	if n := testing.AllocsPerRun(500, func() {
		if _, err := s.executeBatch(0, false, 4, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("disabled hardening path allocates %v per executeBatch", n)
	}
}

func BenchmarkExecuteBatchClean(b *testing.B) {
	s, err := NewServer(cleanExec{}, satisfaction.ImageTagging(), Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.executeBatch(0, false, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}
