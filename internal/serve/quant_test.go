package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pcnn/internal/compile"
	"pcnn/internal/nn"
	"pcnn/internal/runtimemgr"
	"pcnn/internal/satisfaction"
	"pcnn/internal/sched"
	"pcnn/internal/tensor"
)

// quantExec extends fakeExec with the quantization rung: a modeled
// speedup/entropy-premium pair and a recorded quantized execution path,
// so the tests can tell exactly which batches rode the rung and at what
// precision.
type quantExec struct {
	fakeExec
	spec         QuantSpec
	quantEntropy float64 // measured entropy a quantized batch reports

	qmu        sync.Mutex
	quantBatch []batchRecord
	quantPrec  []tensor.Precision
}

func (q *quantExec) QuantSpec(p tensor.Precision) (QuantSpec, bool) {
	if p == tensor.FP32 {
		return QuantSpec{}, false
	}
	return q.spec, true
}

func (q *quantExec) PredictQuantMS(p tensor.Precision, l, n int) float64 {
	return q.PredictMS(l, n) / q.spec.Speedup
}

func (q *quantExec) ExecuteQuant(p tensor.Precision, l, n int, _ *tensor.Tensor) (BatchResult, error) {
	q.qmu.Lock()
	q.quantBatch = append(q.quantBatch, batchRecord{l, n})
	q.quantPrec = append(q.quantPrec, p)
	q.qmu.Unlock()
	return BatchResult{
		TimeMS:  q.PredictQuantMS(p, l, n),
		EnergyJ: 0.25 * float64(n),
		Entropy: q.quantEntropy,
	}, nil
}

func (q *quantExec) quantRecorded() ([]batchRecord, []tensor.Precision) {
	q.qmu.Lock()
	defer q.qmu.Unlock()
	return append([]batchRecord(nil), q.quantBatch...),
		append([]tensor.Precision(nil), q.quantPrec...)
}

// waitBatches blocks until n batches have finished end-to-end (including
// the controller observe that runs after futures resolve), so sequential
// flush tests see each batch's calibration effect before the next flush.
func waitBatches(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.BatchCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d batches (have %d)", n, s.BatchCount())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQuantRungEscalation: a deadline no fp32 flush can meet but the
// quantized one can must ride the quant rung at the base level — the
// quantize-before-perforate ordering — and surface that everywhere:
// the Result, the Stats counters, the Prediction, and Health.
func TestQuantRungEscalation(t *testing.T) {
	// Deadline 1000/120 ≈ 8.33ms; fp32 costs 10ms/image, quantized 5ms.
	ex := &quantExec{
		fakeExec:     fakeExec{maxBatch: 4, msPerImage: []float64{10}, entropies: []float64{0.1}},
		spec:         QuantSpec{Speedup: 2, EntropyDelta: 0.05},
		quantEntropy: 0.15,
	}
	s, err := NewServer(ex, satisfaction.VideoSurveillance(120),
		Config{Workers: 1, ManualFlush: true, Quantize: tensor.Int8})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)

	f, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	s.Flush()
	res := waitAll(t, []*Future{f})[0]
	waitBatches(t, s, 1)

	if !res.Quantized || res.Level != 0 {
		t.Fatalf("result quantized=%v level=%d, want quantized at level 0", res.Quantized, res.Level)
	}
	if res.ExecMS != 5 {
		t.Errorf("quantized ExecMS = %v, want 5 (10ms / speedup 2)", res.ExecMS)
	}
	if got, prec := ex.quantRecorded(); len(got) != 1 || got[0] != (batchRecord{0, 1}) {
		t.Fatalf("quant batches = %v, want one {0 1}", got)
	} else if prec[0] != tensor.Int8 {
		t.Errorf("quant precision = %v, want Int8", prec[0])
	}
	if fp := ex.recorded(); len(fp) != 0 {
		t.Errorf("fp32 Execute ran %v; the quant rung should have absorbed the batch", fp)
	}

	snap := s.Stats()
	if !snap.Quantized || snap.QuantizedBatches != 1 || snap.QuantEscalations != 1 {
		t.Errorf("stats quantized=%v batches=%d escalations=%d, want true/1/1",
			snap.Quantized, snap.QuantizedBatches, snap.QuantEscalations)
	}
	if snap.Escalations != 0 {
		t.Errorf("perforation escalations = %d; quant must come before perforation", snap.Escalations)
	}
	if !s.Quantized() {
		t.Error("Server.Quantized() = false while the rung serves")
	}
	if p := s.Predict(1); !p.Quantized {
		t.Error("Prediction.Quantized = false while the rung serves")
	}
	h := s.Health()
	if !h.Degraded || !h.Quantized {
		t.Fatalf("health degraded=%v quantized=%v, want degraded quantized", h.Degraded, h.Quantized)
	}
	found := false
	for _, r := range h.Reasons {
		if r == "serving quantized host GEMM" {
			found = true
		}
	}
	if !found {
		t.Errorf("health reasons %v missing the quant rung", h.Reasons)
	}
}

// TestQuantVetoAtServer drives the deterministic calibration-veto cycle
// end to end: a quantized batch whose measured entropy crosses the task
// threshold switches the rung off and vetoes it for RecoverAfter
// flushes; only after the cooldown may escalation quantize again.
func TestQuantVetoAtServer(t *testing.T) {
	ex := &quantExec{
		fakeExec:     fakeExec{maxBatch: 4, msPerImage: []float64{10}, entropies: []float64{0.1}},
		spec:         QuantSpec{Speedup: 2, EntropyDelta: 0.05},
		quantEntropy: 0.9, // blows through VideoSurveillance's 0.35 threshold
	}
	s, err := NewServer(ex, satisfaction.VideoSurveillance(120),
		Config{Workers: 1, ManualFlush: true, Quantize: tensor.Int8, RecoverAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)

	// Batch 1 quantizes, gets vetoed; batches 2–4 must serve fp32 while
	// the cooldown drains; batch 5 quantizes again.
	want := []bool{true, false, false, false, true}
	for i, w := range want {
		f, err := s.Submit()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		s.Flush()
		res := waitAll(t, []*Future{f})[0]
		waitBatches(t, s, uint64(i+1))
		if res.Quantized != w {
			t.Fatalf("batch %d quantized = %v, want %v", i+1, res.Quantized, w)
		}
		if i == 0 {
			if snap := s.Stats(); snap.QuantCalibrations != 1 || snap.Quantized {
				t.Fatalf("after vetoed batch: calibrations=%d quantized=%v, want 1/false",
					snap.QuantCalibrations, snap.Quantized)
			}
		}
	}
	// Batch 5's own observe vetoes the rung a second time — its measured
	// entropy is just as bad — so both rung counters end at 2.
	snap := s.Stats()
	if snap.QuantEscalations != 2 || snap.QuantCalibrations != 2 {
		t.Errorf("quant escalations=%d calibrations=%d, want 2/2",
			snap.QuantEscalations, snap.QuantCalibrations)
	}
	if snap.Escalations != 0 {
		t.Errorf("perforation escalations = %d with a single-level executor, want 0", snap.Escalations)
	}
}

// TestQuantGateNoHeadroom: when the precision's entropy premium does not
// fit under the task threshold the rung must never arm — deadline
// pressure notwithstanding — exactly the runtimemgr.QuantizeAllowed
// check applied at server construction.
func TestQuantGateNoHeadroom(t *testing.T) {
	ex := &quantExec{
		fakeExec: fakeExec{maxBatch: 4, msPerImage: []float64{10}, entropies: []float64{0.1}},
		// 0.1 base + 0.3 premium > the 0.35 threshold: no headroom.
		spec:         QuantSpec{Speedup: 2, EntropyDelta: 0.3},
		quantEntropy: 0.15,
	}
	s, err := NewServer(ex, satisfaction.VideoSurveillance(120),
		Config{Workers: 1, ManualFlush: true, Quantize: tensor.Int8})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)

	f, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	s.Flush()
	res := waitAll(t, []*Future{f})[0]
	waitBatches(t, s, 1)

	if res.Quantized {
		t.Fatal("batch quantized despite no entropy headroom")
	}
	if got, _ := ex.quantRecorded(); len(got) != 0 {
		t.Fatalf("ExecuteQuant ran %v with a disarmed rung", got)
	}
	snap := s.Stats()
	if snap.QuantEscalations != 0 || snap.QuantizedBatches != 0 {
		t.Errorf("quant escalations=%d batches=%d, want 0/0", snap.QuantEscalations, snap.QuantizedBatches)
	}
}

// TestQuantPlainExecutor: Config.Quantize on an executor that does not
// implement QuantExecutor must be a silent no-op, not an error.
func TestQuantPlainExecutor(t *testing.T) {
	ex := &fakeExec{maxBatch: 4, msPerImage: []float64{1}, entropies: []float64{0.1}}
	s, err := NewServer(ex, satisfaction.ImageTagging(), Config{Workers: 1, Quantize: tensor.FP16})
	if err != nil {
		t.Fatal(err)
	}
	defer closeServer(t, s)
	f, err := s.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if res := waitAll(t, []*Future{f})[0]; res.Quantized {
		t.Error("plain executor produced a quantized batch")
	}
}

// TestPlanExecutorQuant covers the production executor's quantized path
// on a real scaled network: the int8 run must return valid softmax rows
// whose top-1 picks agree with fp32 within the documented bound, report
// a measured (not tabulated) entropy, come out cheaper by the modeled
// speedup, and leave the fp32 engine untouched for the next batch.
func TestPlanExecutorQuant(t *testing.T) {
	task := satisfaction.ImageTagging()
	plan := compilePlan(t, "AlexNet", "K20c", task)
	scaled := nn.AlexNetS(rand.New(rand.NewSource(1)))

	layers := scaled.PerforableLayers()
	full := make([]runtimemgr.KeepGrid, len(layers))
	table := &runtimemgr.Table{
		LayerNames: layerNames(layers),
		Entries:    []runtimemgr.TableEntry{{Keeps: full, Speedup: 1, TunedLayer: -1}},
	}
	path := []sched.TuningPoint{{Entropy: 0.2}}

	ex, err := NewPlanExecutor(plan, path, scaled, table)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.QuantSpec(tensor.FP32); ok {
		t.Fatal("QuantSpec(FP32) reported a quantized mode")
	}
	spec, ok := ex.QuantSpec(tensor.Int8)
	if !ok || spec.Speedup != compile.Int8GEMMSpeedup || spec.EntropyDelta != Int8EntropyDelta {
		t.Fatalf("QuantSpec(Int8) = %+v ok=%v, want the compile-modeled profile", spec, ok)
	}
	if got, want := ex.PredictQuantMS(tensor.Int8, 0, 4), ex.PredictMS(0, 4)/spec.Speedup; got != want {
		t.Fatalf("PredictQuantMS = %v, want PredictMS/speedup = %v", got, want)
	}

	const batch = 8
	inputs := tensor.New(batch, 3, nn.ScaledInputSize, nn.ScaledInputSize)
	for i := range inputs.Data {
		inputs.Data[i] = float32(i%7) * 0.1
	}

	fp32, err := ex.Execute(0, batch, inputs)
	if err != nil {
		t.Fatal(err)
	}
	int8res, err := ex.ExecuteQuant(tensor.Int8, 0, batch, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(int8res.Probs) != batch {
		t.Fatalf("int8 run returned %d prob rows, want %d", len(int8res.Probs), batch)
	}
	if int8res.Entropy <= 0 || int8res.Entropy == path[0].Entropy+spec.EntropyDelta {
		t.Errorf("int8 entropy %v looks tabulated, want measured", int8res.Entropy)
	}
	if want := fp32.TimeMS / spec.Speedup; int8res.TimeMS != want {
		t.Errorf("int8 TimeMS = %v, want fp32/speedup = %v", int8res.TimeMS, want)
	}

	// Documented top-1 agreement bound for the int8 path: at least 7 of 8
	// rows must agree with fp32. On this deterministic seed the observed
	// agreement is 8/8; the slack absorbs kernel-level rounding drift
	// without letting a broken quantized path through.
	agree := 0
	for i := range int8res.Probs {
		sum := float32(0)
		for _, p := range int8res.Probs[i] {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("int8 row %d not a distribution (sum %v)", i, sum)
		}
		if argmaxRow(int8res.Probs[i]) == argmaxRow(fp32.Probs[i]) {
			agree++
		}
	}
	if agree < batch-1 {
		t.Fatalf("int8 top-1 agreement %d/%d below the documented bound %d/%d",
			agree, batch, batch-1, batch)
	}

	// The quantized run must not leak its engine into the fp32 path: a
	// fresh Execute has to reproduce the first fp32 result bit-for-bit.
	again, err := ex.Execute(0, batch, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Probs {
		for j := range again.Probs[i] {
			if again.Probs[i][j] != fp32.Probs[i][j] {
				t.Fatalf("fp32 row %d diverged after the quantized run", i)
			}
		}
	}
}

func argmaxRow(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
