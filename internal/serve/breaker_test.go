package serve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(threshold, cooldown, clk.now), clk
}

func wantState(t *testing.T, b *breaker, want BreakerState) {
	t.Helper()
	if st, _, _ := b.snapshot(); st != want {
		t.Fatalf("breaker state = %v, want %v", st, want)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure()
		wantState(t, b, BreakerClosed)
	}
	b.allow()
	b.failure() // third consecutive failure
	wantState(t, b, BreakerOpen)
	if b.allow() {
		t.Fatal("open breaker admitted an attempt inside the cooldown")
	}
	if _, trips, resets := b.snapshot(); trips != 1 || resets != 0 {
		t.Fatalf("trips %d resets %d, want 1 and 0", trips, resets)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.failure()
	b.success() // interleaved success: the streak restarts
	b.failure()
	wantState(t, b, BreakerClosed)
	b.failure()
	wantState(t, b, BreakerOpen)
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure()
	wantState(t, b, BreakerOpen)

	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("admitted before the cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	wantState(t, b, BreakerHalfOpen)
	// The single-probe invariant: while the probe is in flight every
	// other attempt fails fast.
	if b.allow() || b.allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.success()
	wantState(t, b, BreakerClosed)
	if _, trips, resets := b.snapshot(); trips != 1 || resets != 1 {
		t.Fatalf("trips %d resets %d, want 1 and 1", trips, resets)
	}
	if !b.allow() {
		t.Fatal("recovered breaker refused an attempt")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.failure() // probe failed: straight back to open, new cooldown
	wantState(t, b, BreakerOpen)
	if b.allow() {
		t.Fatal("re-opened breaker admitted an attempt immediately")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("second cooldown elapsed but probe refused")
	}
	b.success()
	wantState(t, b, BreakerClosed)
	if _, trips, resets := b.snapshot(); trips != 2 || resets != 1 {
		t.Fatalf("trips %d resets %d, want 2 and 1", trips, resets)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := newTestBreaker(0, time.Second)
	for i := 0; i < 10; i++ {
		b.failure()
		if !b.allow() {
			t.Fatal("disabled breaker refused an attempt")
		}
	}
	st, trips, resets := b.snapshot()
	if st != BreakerClosed || trips != 0 || resets != 0 {
		t.Fatalf("disabled breaker snapshot %v/%d/%d, want closed/0/0", st, trips, resets)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(1, 0, nil)
	if b.cooldown != 250*time.Millisecond {
		t.Fatalf("default cooldown %v, want 250ms", b.cooldown)
	}
	if b.now == nil {
		t.Fatal("nil clock not defaulted")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerHalfOpen.String() != "half-open" ||
		BreakerOpen.String() != "open" {
		t.Fatal("breaker state strings wrong")
	}
}
