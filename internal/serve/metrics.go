package serve

import (
	"strconv"

	"pcnn/internal/fault"
	"pcnn/internal/obs"
	"pcnn/internal/tensor"
)

// Bucket layouts for the serving histograms. Response and stage times are
// milliseconds; batch sizes cover every power of two up to the largest
// compiled batch the roadmap's platforms use.
var (
	responseBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}
	stageBuckets    = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}
	batchBuckets    = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// traceStages are the lifecycle stages every request trace marks, in
// order. finishTrace relies on "execute" preceding "resolve".
var traceStages = []string{"submit", "coalesce", "escalate", "execute", "resolve"}

// serveMetrics is the server's registered metric set. Everything is
// pre-registered at construction — per-level histograms indexed by the
// clamped level, stage histograms keyed by name — so the hot path does no
// registry lookups and takes no locks beyond the histograms' atomics.
type serveMetrics struct {
	response  []*obs.Histogram // pcnn_serve_response_ms{level}
	batchSize []*obs.Histogram // pcnn_serve_batch_size{level}
	stages    map[string]*obs.Histogram
}

// newMetrics registers the serving metric set on reg, bridging the
// server's existing tallies (stats, controller, queue gauges) through
// export-time reader funcs so nothing is double-counted.
func newMetrics(reg *obs.Registry, s *Server) *serveMetrics {
	reg.GaugeFunc("pcnn_serve_queue_depth",
		"Requests accepted but not yet executed.",
		func() float64 { return float64(s.st.queueDepth()) })
	reg.GaugeFunc("pcnn_serve_inflight_batches",
		"Batches flushed to the worker pool but not yet finished.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("pcnn_serve_level",
		"Current perforation (degradation) level; 0 is the full network.",
		func() float64 { return float64(s.ctrl.Level()) })
	reg.GaugeFunc("pcnn_serve_throughput_rps",
		"Completions per second over the sliding window.",
		s.st.windowedRPS)
	reg.GaugeFunc("pcnn_serve_lifetime_rps",
		"Completions per second since the server started.",
		s.st.lifetimeRPS)

	const reqHelp = "Requests by outcome over the server's lifetime."
	reg.CounterFunc("pcnn_serve_requests_total", reqHelp,
		s.st.counterFn(func(st *stats) uint64 { return st.submitted }),
		obs.Label{Key: "outcome", Value: "submitted"})
	reg.CounterFunc("pcnn_serve_requests_total", reqHelp,
		s.st.counterFn(func(st *stats) uint64 { return st.rejected }),
		obs.Label{Key: "outcome", Value: "rejected"})
	reg.CounterFunc("pcnn_serve_requests_total", reqHelp,
		s.st.counterFn(func(st *stats) uint64 { return st.completed }),
		obs.Label{Key: "outcome", Value: "completed"})
	reg.CounterFunc("pcnn_serve_requests_total", reqHelp,
		s.st.counterFn(func(st *stats) uint64 { return st.failed }),
		obs.Label{Key: "outcome", Value: "failed"})

	const rejHelp = "Requests rejected at admission, by reason."
	for r := rejectReason(0); r < numRejectReasons; r++ {
		r := r
		reg.CounterFunc("pcnn_serve_rejected_total", rejHelp,
			s.st.counterFn(func(st *stats) uint64 { return st.rejects[r] }),
			obs.Label{Key: "reason", Value: r.String()})
	}

	reg.CounterFunc("pcnn_serve_deadline_miss_total",
		"Completed requests whose response time exceeded the task deadline.",
		s.st.counterFn(func(st *stats) uint64 { return st.missed }))
	reg.CounterFunc("pcnn_serve_batches_total",
		"Batches executed.",
		s.st.counterFn(func(st *stats) uint64 { return st.batches }))
	reg.CounterFunc("pcnn_serve_priority_promotions_total",
		"Requests the aging policy batched ahead of a natively more urgent archetype band.",
		s.st.counterFn(func(st *stats) uint64 { return st.promoted }))
	reg.CounterFunc("pcnn_serve_batch_demotions_total",
		"Batches demoted to simulation-only classification because their input samples were missing or heterogeneous.",
		s.st.counterFn(func(st *stats) uint64 { return st.demoted }))

	reg.CounterFunc("pcnn_serve_escalations_total",
		"Perforation-level escalations under deadline pressure.",
		func() float64 { esc, _, _ := s.ctrl.counts(); return float64(esc) })
	reg.CounterFunc("pcnn_serve_calibrations_total",
		"Entropy-triggered calibration backtracks.",
		func() float64 { _, cal, _ := s.ctrl.counts(); return float64(cal) })
	reg.CounterFunc("pcnn_serve_recoveries_total",
		"Comfortable-slack recoveries easing the level back down.",
		func() float64 { _, _, rec := s.ctrl.counts(); return float64(rec) })

	// The quantization rung: whether reduced-precision GEMM is serving
	// right now, how many batches rode the rung, and its escalation /
	// calibration-veto tallies. All flat zero when the rung never armed.
	reg.GaugeFunc("pcnn_serve_quantized",
		"1 while the quantization rung serves (host GEMMs at reduced precision).",
		func() float64 {
			if s.ctrl.Quant() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("pcnn_serve_quantized_batches_total",
		"Batches executed on the quantization rung.",
		s.st.counterFn(func(st *stats) uint64 { return st.quantized }))
	reg.CounterFunc("pcnn_serve_quant_escalations_total",
		"Escalations onto the quantization rung under deadline pressure.",
		func() float64 { qesc, _ := s.ctrl.quantCounts(); return float64(qesc) })
	reg.CounterFunc("pcnn_serve_quant_calibrations_total",
		"Entropy-triggered calibration vetoes of the quantization rung.",
		func() float64 { _, qcal := s.ctrl.quantCounts(); return float64(qcal) })

	reg.GaugeFunc("pcnn_serve_breaker_state",
		"Circuit breaker position: 0 closed, 1 half-open, 2 open.",
		func() float64 { st, _, _ := s.brk.snapshot(); return float64(st) })
	reg.CounterFunc("pcnn_serve_breaker_trips_total",
		"Circuit breaker trips (closed or half-open to open).",
		func() float64 { _, trips, _ := s.brk.snapshot(); return float64(trips) })
	reg.CounterFunc("pcnn_serve_breaker_resets_total",
		"Circuit breaker resets (half-open probe success to closed).",
		func() float64 { _, _, resets := s.brk.snapshot(); return float64(resets) })
	reg.CounterFunc("pcnn_serve_retries_total",
		"Batch execution attempts retried after a failure.",
		s.st.counterFn(func(st *stats) uint64 { return st.retries }))
	reg.CounterFunc("pcnn_serve_exec_timeouts_total",
		"Batch execution attempts cut off by the per-attempt timeout.",
		s.st.counterFn(func(st *stats) uint64 { return st.timeouts }))
	// Host GEMM engine state: which backend serves the layer GEMMs and the
	// blocked tile that most recently ran — the host-side half of the
	// paper's per-layer kernel choice, surfaced so a deployment dashboard
	// can see which kernel actually handles traffic.
	eng := tensor.Default()
	for _, bk := range []tensor.Backend{tensor.Auto, tensor.Serial, tensor.Parallel, tensor.Blocked} {
		bk := bk
		reg.GaugeFunc("pcnn_gemm_backend_active",
			"1 for the default engine's selected GEMM backend, 0 for the others.",
			func() float64 {
				if eng.Backend() == bk {
					return 1
				}
				return 0
			},
			obs.Label{Key: "backend", Value: bk.String()})
	}
	reg.GaugeFunc("pcnn_gemm_workers",
		"Worker-pool size available to the default GEMM engine.",
		func() float64 { return float64(eng.Workers()) })
	reg.GaugeFunc("pcnn_gemm_tile_mc",
		"Blocked-backend cache tile: A-block rows (MC) of the last tile used.",
		func() float64 { return float64(eng.ActiveTile().MC) })
	reg.GaugeFunc("pcnn_gemm_tile_kc",
		"Blocked-backend cache tile: block depth (KC) of the last tile used.",
		func() float64 { return float64(eng.ActiveTile().KC) })
	reg.GaugeFunc("pcnn_gemm_tile_mr",
		"Blocked-backend register tile rows (MR) of the last tile used.",
		func() float64 { return float64(eng.ActiveTile().MR) })
	reg.GaugeFunc("pcnn_gemm_tile_nr",
		"Blocked-backend register tile columns (NR) of the last tile used.",
		func() float64 { return float64(eng.ActiveTile().NR) })

	if s.faults != nil {
		for _, k := range fault.Kinds() {
			k := k
			reg.CounterFunc("pcnn_serve_injected_faults_total",
				"Faults injected by the attached chaos injector, by kind.",
				func() float64 { return float64(s.faults.Count(k)) },
				obs.Label{Key: "kind", Value: k.String()})
		}
	}

	m := &serveMetrics{stages: make(map[string]*obs.Histogram, len(traceStages))}
	levels := s.ex.Levels()
	if levels < 1 {
		levels = 1
	}
	for l := 0; l < levels; l++ {
		lbl := obs.Label{Key: "level", Value: strconv.Itoa(l)}
		m.response = append(m.response, reg.Histogram("pcnn_serve_response_ms",
			"End-to-end response time (queue + execution) in milliseconds.",
			responseBuckets, lbl))
		m.batchSize = append(m.batchSize, reg.Histogram("pcnn_serve_batch_size",
			"Coalesced batch sizes per executed batch.",
			batchBuckets, lbl))
	}
	for _, name := range traceStages {
		m.stages[name] = reg.Histogram("pcnn_serve_stage_ms",
			"Per-stage request lifecycle durations in milliseconds.",
			stageBuckets, obs.Label{Key: "stage", Value: name})
	}
	return m
}

// clampLevel maps any level onto the pre-registered range.
func (m *serveMetrics) clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(m.response) {
		return len(m.response) - 1
	}
	return level
}

// observeBatch records one executed batch's size at its level.
func (m *serveMetrics) observeBatch(level, n int) {
	m.batchSize[m.clampLevel(level)].Observe(float64(n))
}

// observeResponse records one request's response time at its level.
func (m *serveMetrics) observeResponse(level int, ms float64) {
	m.response[m.clampLevel(level)].Observe(ms)
}

// observeStages folds a finished trace's stage durations into the
// per-stage histograms.
func (m *serveMetrics) observeStages(tr *obs.Trace) {
	for _, st := range tr.Stages {
		if h, ok := m.stages[st.Name]; ok {
			h.Observe(st.DurMS)
		}
	}
}
