package obs

import (
	"sync"
	"time"
)

// Stage is one step of a request's lifecycle. AtMS is the offset from the
// trace's start at which the stage *completed*; DurMS is how long the
// stage took (the gap since the previous mark).
type Stage struct {
	Name  string  `json:"name"`
	AtMS  float64 `json:"at_ms"`
	DurMS float64 `json:"dur_ms"`
}

// Trace records one request's submit → coalesce → escalate → execute →
// resolve lifecycle. A trace is built by exactly one goroutine at a time
// (ownership passes along the pipeline with the request, and channel
// hand-offs order the marks), so Mark takes no lock.
type Trace struct {
	ID      uint64    `json:"id"`
	Start   time.Time `json:"start"`
	Batch   int       `json:"batch,omitempty"`
	Level   int       `json:"level,omitempty"`
	Demoted bool      `json:"demoted,omitempty"`
	Err     string    `json:"err,omitempty"`
	Stages  []Stage   `json:"stages"`

	last time.Time
}

// NewTrace starts a trace now.
func NewTrace(id uint64) *Trace {
	now := time.Now()
	return &Trace{ID: id, Start: now, last: now}
}

// Mark closes the current stage: it appends a Stage whose duration is the
// time since the previous mark (or since Start for the first).
func (t *Trace) Mark(name string) {
	now := time.Now()
	t.Stages = append(t.Stages, Stage{
		Name:  name,
		AtMS:  durMS(now.Sub(t.Start)),
		DurMS: durMS(now.Sub(t.last)),
	})
	t.last = now
}

// TotalMS is the span from Start to the last mark.
func (t *Trace) TotalMS() float64 { return durMS(t.last.Sub(t.Start)) }

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TraceRing is a bounded in-memory ring of recent traces: adding past the
// capacity overwrites the oldest entry. Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

// NewTraceRing holds the most recent n traces (n < 1 is clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]Trace, n)}
}

// Add stores a copy of the finished trace.
func (r *TraceRing) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = *t
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Len reports how many traces are held (≤ capacity).
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Recent returns the held traces, newest first.
func (r *TraceRing) Recent() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Event is one recorded decision — a scheduler choosing a batch, the
// runtime manager calibrating a level — with free-form fields.
type Event struct {
	Time   time.Time      `json:"time"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields,omitempty"`
}

// EventLog is a bounded ring of decision events. A nil *EventLog is
// inert: Record is a no-op and Recent returns nil, so decision sites can
// record unconditionally.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewEventLog holds the most recent n events (n < 1 is clamped to 1).
func NewEventLog(n int) *EventLog {
	if n < 1 {
		n = 1
	}
	return &EventLog{buf: make([]Event, n)}
}

// Record appends one event, overwriting the oldest past capacity.
func (l *EventLog) Record(name string, fields map[string]any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = Event{Time: time.Now(), Name: name, Fields: fields}
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Len reports how many events are held (≤ capacity).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Recent returns the held events, newest first.
func (l *EventLog) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.buf)
		}
		out = append(out, l.buf[idx])
	}
	return out
}
