package obs

import (
	"sync"
	"time"
)

// RateWindow estimates an event rate over a sliding window of one-second
// buckets, so idle periods age out instead of permanently depressing the
// reported rate the way a lifetime count ÷ uptime does. Safe for
// concurrent use.
type RateWindow struct {
	mu      sync.Mutex
	now     func() time.Time
	buckets []uint64
	head    int   // index of the bucket holding headSec's events
	headSec int64 // unix second the head bucket covers
	total   uint64
	start   time.Time
}

// NewRateWindow tracks events over the last `seconds` seconds (< 1 is
// clamped to 1). now may be nil, defaulting to time.Now; tests inject a
// fake clock.
func NewRateWindow(seconds int, now func() time.Time) *RateWindow {
	if seconds < 1 {
		seconds = 1
	}
	if now == nil {
		now = time.Now
	}
	t := now()
	return &RateWindow{
		now:     now,
		buckets: make([]uint64, seconds),
		headSec: t.Unix(),
		start:   t,
	}
}

// advance rotates the ring forward to cover the given unix second,
// zeroing buckets that fell out of the window. Callers hold mu.
func (w *RateWindow) advance(sec int64) {
	steps := sec - w.headSec
	if steps <= 0 {
		return
	}
	if steps > int64(len(w.buckets)) {
		steps = int64(len(w.buckets))
	}
	for i := int64(0); i < steps; i++ {
		w.head = (w.head + 1) % len(w.buckets)
		w.buckets[w.head] = 0
	}
	w.headSec = sec
}

// Add records n events at the current time.
func (w *RateWindow) Add(n uint64) {
	w.mu.Lock()
	w.advance(w.now().Unix())
	w.buckets[w.head] += n
	w.total += n
	w.mu.Unlock()
}

// Rate returns events per second over the window. Before a full window
// has elapsed since construction, the divisor is the elapsed time (with a
// one-second floor), so early rates are not diluted by empty future
// buckets.
func (w *RateWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	w.advance(now.Unix())
	var sum uint64
	for _, b := range w.buckets {
		sum += b
	}
	span := float64(len(w.buckets))
	if elapsed := now.Sub(w.start).Seconds(); elapsed < span {
		span = elapsed
	}
	if span < 1 {
		span = 1
	}
	return float64(sum) / span
}

// Total returns the lifetime event count.
func (w *RateWindow) Total() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}
