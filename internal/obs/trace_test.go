package obs

import (
	"testing"
	"time"
)

// TestTraceMarks: stages appear in order with non-negative offsets and
// durations, and AtMS is monotone.
func TestTraceMarks(t *testing.T) {
	tr := NewTrace(42)
	tr.Mark("submit")
	time.Sleep(time.Millisecond)
	tr.Mark("execute")
	tr.Mark("resolve")
	if tr.ID != 42 || len(tr.Stages) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	prev := -1.0
	for _, s := range tr.Stages {
		if s.AtMS < prev || s.DurMS < 0 {
			t.Errorf("stage %s out of order: at %v dur %v (prev %v)", s.Name, s.AtMS, s.DurMS, prev)
		}
		prev = s.AtMS
	}
	if tr.Stages[1].DurMS <= 0 {
		t.Errorf("execute stage duration %v, want > 0 after 1ms sleep", tr.Stages[1].DurMS)
	}
	if tr.TotalMS() < tr.Stages[2].AtMS {
		t.Errorf("total %v < last mark %v", tr.TotalMS(), tr.Stages[2].AtMS)
	}
}

// TestTraceRingBounds: adding far past the capacity keeps exactly the
// newest `cap` traces, newest first.
func TestTraceRingBounds(t *testing.T) {
	const capacity = 100
	r := NewTraceRing(capacity)
	for i := 1; i <= 300; i++ {
		r.Add(&Trace{ID: uint64(i)})
	}
	if got := r.Len(); got != capacity {
		t.Fatalf("len = %d, want %d", got, capacity)
	}
	recent := r.Recent()
	if len(recent) != capacity {
		t.Fatalf("recent len = %d, want %d", len(recent), capacity)
	}
	for i, tr := range recent {
		if want := uint64(300 - i); tr.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
}

// TestTraceRingPartial: before wrap-around, only what was added comes
// back.
func TestTraceRingPartial(t *testing.T) {
	r := NewTraceRing(8)
	r.Add(&Trace{ID: 1})
	r.Add(&Trace{ID: 2})
	recent := r.Recent()
	if len(recent) != 2 || recent[0].ID != 2 || recent[1].ID != 1 {
		t.Fatalf("recent = %+v", recent)
	}
}

// TestEventLog: bounded, newest first, and nil-safe.
func TestEventLog(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		l.Record("decision", map[string]any{"i": i})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	recent := l.Recent()
	if recent[0].Fields["i"] != 10 || recent[3].Fields["i"] != 7 {
		t.Fatalf("recent = %+v", recent)
	}

	var nilLog *EventLog
	nilLog.Record("ignored", nil) // must not panic
	if nilLog.Len() != 0 || nilLog.Recent() != nil {
		t.Fatal("nil EventLog not inert")
	}
}
