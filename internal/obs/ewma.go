package obs

import "sync"

// EWMA is an exponentially weighted moving average with a fixed
// smoothing factor. HTTPReplica uses one per endpoint to track wire
// round-trip latency: a heavy smoothing bias toward history keeps a
// single slow poll from swinging routing predictions. Safe for
// concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	n     uint64
}

// NewEWMA builds an average with the given smoothing factor in (0, 1];
// out-of-range values are clamped. Larger alpha weights recent samples
// more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in. The first sample seeds the average
// directly so startup does not decay from zero.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	if e.n == 0 {
		e.value = v
	} else {
		e.value += e.alpha * (v - e.value)
	}
	e.n++
	e.mu.Unlock()
}

// Value returns the current average, or 0 before any sample.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Count returns how many samples have been observed.
func (e *EWMA) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}
