package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Exposition merges several registries into one Prometheus text-format
// document, stamping every series from a part with that part's extra
// labels. The fleet uses it to export N replicas' existing pcnn_serve_*
// metric sets side by side under replica/model labels, with each family's
// HELP/TYPE header emitted exactly once.
type Exposition struct {
	parts []expoPart
}

type expoPart struct {
	reg    *Registry
	labels string // pre-rendered {k="v",...} or ""
}

// NewExposition returns an empty exposition.
func NewExposition() *Exposition { return &Exposition{} }

// Add appends one registry whose series will carry the extra labels. A nil
// registry is skipped. Order matters only for resolving duplicate HELP
// strings (first added wins).
func (e *Exposition) Add(reg *Registry, labels ...Label) *Exposition {
	if reg != nil {
		e.parts = append(e.parts, expoPart{reg: reg, labels: renderLabels(labels)})
	}
	return e
}

// mergedSeries is one part's series re-labelled for the merged document.
type mergedSeries struct {
	labels string
	metric any
}

// mergedFamily accumulates every part's series sharing a metric name.
type mergedFamily struct {
	name, help string
	kind       metricKind
	series     []mergedSeries
}

// WritePrometheus renders the merged exposition. Families are sorted by
// name and series by their full label signature, so output is
// deterministic. Registering the same family name with different kinds
// across parts is a caller bug and returns an error rather than emitting
// an unparseable document.
func (e *Exposition) WritePrometheus(w io.Writer) error {
	merged := map[string]*mergedFamily{}
	for _, p := range e.parts {
		p.reg.mu.Lock()
		for name, f := range p.reg.families {
			mf := merged[name]
			if mf == nil {
				mf = &mergedFamily{name: name, help: f.help, kind: f.kind}
				merged[name] = mf
			}
			if mf.kind != f.kind {
				p.reg.mu.Unlock()
				return fmt.Errorf("obs: metric %s merged as both %s and %s", name, mf.kind, f.kind)
			}
			for _, s := range f.series {
				mf.series = append(mf.series, mergedSeries{
					labels: mergeLabels(s.labels, p.labels),
					metric: s.metric,
				})
			}
		}
		p.reg.mu.Unlock()
	}

	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := merged[n]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for i := range f.series {
			writeSeries(bw, f.name, &series{labels: f.series[i].labels, metric: f.series[i].metric})
		}
	}
	return bw.Flush()
}

// mergeLabels concatenates two pre-rendered label sets; either may be "".
func mergeLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a[:len(a)-1] + "," + b[1:]
	}
}
