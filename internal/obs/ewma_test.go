package obs

import (
	"math"
	"sync"
	"testing"
)

func TestEWMASeedsAndSmooths(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("fresh EWMA = (%v, %d), want (0, 0)", e.Value(), e.Count())
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("first sample should seed directly: got %v", e.Value())
	}
	e.Observe(20)
	if got := e.Value(); math.Abs(got-15) > 1e-12 {
		t.Errorf("after 10,20 at alpha 0.5: got %v, want 15", got)
	}
	e.Observe(20)
	if got := e.Value(); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("after third sample: got %v, want 17.5", got)
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d, want 3", e.Count())
	}
}

func TestEWMAClampsAlpha(t *testing.T) {
	for _, bad := range []float64{-1, 0, 1.5} {
		e := NewEWMA(bad)
		e.Observe(100)
		e.Observe(0)
		if got := e.Value(); math.Abs(got-80) > 1e-12 {
			t.Errorf("alpha %v should clamp to 0.2: after 100,0 got %v, want 80", bad, got)
		}
	}
}

func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Observe(5)
			}
		}()
	}
	wg.Wait()
	if got := e.Value(); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant stream should converge to 5, got %v", got)
	}
	if e.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", e.Count())
	}
}
