package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

// TestHistogramBucketing pins the le semantics: a value lands in the
// first bucket whose upper bound is ≥ it, and exported counts are
// cumulative.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ms", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	upper, cum := h.Buckets()
	if len(upper) != 3 {
		t.Fatalf("buckets = %v", upper)
	}
	want := []uint64{2, 4, 5} // ≤1: {0.5,1}; ≤2: +{1.5,2}; ≤5: +{3}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[le=%v] = %d, want %d", upper[i], cum[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); got != 18 {
		t.Errorf("sum = %v, want 18", got)
	}
}

// TestDuplicateRegistration: the same (name, labels) returns the same
// metric instance; a different label set makes a new series.
func TestDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x", Label{"k", "1"})
	b := r.Counter("dup_total", "x", Label{"k", "1"})
	c := r.Counter("dup_total", "x", Label{"k", "2"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
}

// TestExpositionGolden pins the Prometheus text format byte for byte.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pcnn_requests_total", "Requests by outcome.", Label{"outcome", "ok"}).Add(3)
	r.Counter("pcnn_requests_total", "Requests by outcome.", Label{"outcome", "rejected"}).Add(1)
	r.Gauge("pcnn_queue_depth", "Queued requests.").Set(7)
	r.GaugeFunc("pcnn_throughput_rps", "Windowed rate.", func() float64 { return 12.5 })
	h := r.Histogram("pcnn_latency_ms", "Response latency.", []float64{1, 5, 25}, Label{"level", "0"})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pcnn_latency_ms Response latency.
# TYPE pcnn_latency_ms histogram
pcnn_latency_ms_bucket{level="0",le="1"} 1
pcnn_latency_ms_bucket{level="0",le="5"} 2
pcnn_latency_ms_bucket{level="0",le="25"} 2
pcnn_latency_ms_bucket{level="0",le="+Inf"} 3
pcnn_latency_ms_sum{level="0"} 103.5
pcnn_latency_ms_count{level="0"} 3
# HELP pcnn_queue_depth Queued requests.
# TYPE pcnn_queue_depth gauge
pcnn_queue_depth 7
# HELP pcnn_requests_total Requests by outcome.
# TYPE pcnn_requests_total counter
pcnn_requests_total{outcome="ok"} 3
pcnn_requests_total{outcome="rejected"} 1
# HELP pcnn_throughput_rps Windowed rate.
# TYPE pcnn_throughput_rps gauge
pcnn_throughput_rps 12.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers registration, updates and export from
// many goroutines; run under -race it is the registry's thread-safety
// proof, and the final counts must still be exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "shared")
			h := r.Histogram("conc_ms", "shared", []float64{1, 10, 100})
			ga := r.Gauge("conc_gauge", "shared")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				ga.Add(1)
				if i%100 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("conc_ms", "shared", []float64{1, 10, 100}).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("conc_gauge", "shared").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
}

// TestNilRegistry: a nil registry hands out working (unexported) metrics
// and exports nothing, so instrumentation never needs nil checks.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter unusable")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exported %q, err %v", buf.String(), err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"path", `a"b\c` + "\n"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("escaping wrong: %q", buf.String())
	}
}
