package obs

import (
	"testing"
	"time"
)

// fakeClock steps a RateWindow deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestRateWindowSteadyState: 10 events/s for 10s through a 10s window
// reads back as 10/s.
func TestRateWindowSteadyState(t *testing.T) {
	clk := newFakeClock()
	w := NewRateWindow(10, clk.now)
	for s := 0; s < 10; s++ {
		w.Add(10)
		clk.advance(time.Second)
	}
	if got := w.Rate(); got < 9 || got > 11 {
		t.Fatalf("steady rate = %v, want ≈10", got)
	}
	if w.Total() != 100 {
		t.Fatalf("total = %d, want 100", w.Total())
	}
}

// TestRateWindowIdleGap is the ISSUE's regression: an idle period must
// not permanently depress the windowed rate. After a 100s gap and a
// second identical burst, the windowed rate matches the burst rate while
// the naive lifetime rate (total ÷ uptime) has collapsed.
func TestRateWindowIdleGap(t *testing.T) {
	clk := newFakeClock()
	start := clk.t
	w := NewRateWindow(10, clk.now)

	burst := func() {
		for s := 0; s < 10; s++ {
			w.Add(10)
			clk.advance(time.Second)
		}
	}
	burst()
	before := w.Rate()

	clk.advance(100 * time.Second) // idle gap
	burst()
	after := w.Rate()

	if before < 9 || before > 11 {
		t.Fatalf("pre-gap rate = %v, want ≈10", before)
	}
	if after < 9 || after > 11 {
		t.Fatalf("post-gap rate = %v, want ≈10 (idle gap depressed the window)", after)
	}
	if after < before/2 {
		t.Fatalf("idle gap halved the windowed rate: before %v, after %v", before, after)
	}
	lifetime := float64(w.Total()) / clk.t.Sub(start).Seconds()
	if lifetime >= after/2 {
		t.Fatalf("lifetime rate %v not depressed vs windowed %v; gap regression scenario broken", lifetime, after)
	}
}

// TestRateWindowGapBeyondWindow: a gap longer than the window empties it.
func TestRateWindowGapBeyondWindow(t *testing.T) {
	clk := newFakeClock()
	w := NewRateWindow(5, clk.now)
	w.Add(100)
	clk.advance(60 * time.Second)
	if got := w.Rate(); got != 0 {
		t.Fatalf("rate after long gap = %v, want 0", got)
	}
}
