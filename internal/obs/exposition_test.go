package obs

import (
	"strings"
	"testing"
)

func TestExpositionMergesWithPartLabels(t *testing.T) {
	a := NewRegistry()
	a.Counter("pcnn_x_total", "X counter.").Add(1)
	a.Counter("pcnn_y_total", "Y counter.", Label{Key: "reason", Value: "q"}).Add(7)
	b := NewRegistry()
	b.Counter("pcnn_x_total", "X counter.").Add(3)

	var sb strings.Builder
	err := NewExposition().
		Add(a, Label{Key: "replica", Value: "n0"}).
		Add(b, Label{Key: "replica", Value: "n1"}).
		Add(nil, Label{Key: "replica", Value: "ghost"}). // nil parts are skipped
		WritePrometheus(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`pcnn_x_total{replica="n0"} 1`,
		`pcnn_x_total{replica="n1"} 3`,
		// A series' own labels merge with the part labels.
		`pcnn_y_total{reason="q",replica="n0"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even when two parts share it.
	if n := strings.Count(out, "# HELP pcnn_x_total"); n != 1 {
		t.Errorf("HELP emitted %d times, want 1", n)
	}
	if n := strings.Count(out, "# TYPE pcnn_x_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestExpositionKindConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("pcnn_z", "Z.").Inc()
	b := NewRegistry()
	b.Gauge("pcnn_z", "Z.").Set(2)
	err := NewExposition().Add(a).Add(b).WritePrometheus(&strings.Builder{})
	if err == nil {
		t.Fatal("merging counter and gauge under one name should error")
	}
}

func TestExpositionDeterministic(t *testing.T) {
	a := NewRegistry()
	a.Counter("pcnn_b_total", "B.").Inc()
	a.Gauge("pcnn_a", "A.").Set(4)
	b := NewRegistry()
	b.Counter("pcnn_b_total", "B.").Add(2)
	exp := NewExposition().
		Add(a, Label{Key: "replica", Value: "n1"}).
		Add(b, Label{Key: "replica", Value: "n0"})

	var first, second strings.Builder
	if err := exp.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := exp.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("exposition not deterministic:\n%s\nvs\n%s", first.String(), second.String())
	}
	// Families sort by name, series by full label signature.
	out := first.String()
	if ai, bi := strings.Index(out, "pcnn_a"), strings.Index(out, "pcnn_b_total"); ai > bi {
		t.Error("families not sorted by name")
	}
	n0 := strings.Index(out, `pcnn_b_total{replica="n0"}`)
	n1 := strings.Index(out, `pcnn_b_total{replica="n1"}`)
	if n0 < 0 || n1 < 0 || n0 > n1 {
		t.Error("series not sorted by label signature within the family")
	}
}
