// Package obs is P-CNN's dependency-free observability core: a registry
// of counters, gauges and fixed-bucket histograms with an atomic hot path
// and Prometheus text-format export, plus per-request lifecycle traces, a
// bounded decision-event log, and a windowed rate estimator. The serving
// stack (internal/serve, cmd/pcnnd) threads these through every request;
// the schedulers and the runtime manager record their decisions into an
// EventLog; nothing here imports anything beyond the standard library, so
// every package in the tree may depend on it.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "level", Value: "2"}.
type Label struct{ Key, Value string }

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are lock-free and safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down. The zero value is
// ready; all methods are lock-free and safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free
// (one atomic add per bucket plus a CAS loop for the sum) and safe for
// concurrent use with export.
type Histogram struct {
	upper   []float64 // sorted bucket upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each (the
// Prometheus "le" semantics), excluding the implicit +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	cum := make([]uint64, len(h.upper))
	var run uint64
	for i := range h.upper {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return append([]float64(nil), h.upper...), cum
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a metric family.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	metric any    // *Counter, *Gauge, *Histogram or func() float64
}

// family groups every series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a mutex; the metrics themselves
// are atomic. A nil *Registry is inert: registration returns usable
// metrics that are simply never exported.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// register adds (or finds) the series under name/labels, enforcing kind
// consistency within a family.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, make func() any) any {
	if r == nil {
		return make()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	for _, s := range f.series {
		if s.labels == ls {
			return s.metric
		}
	}
	m := make()
	f.series = append(f.series, &series{labels: ls, metric: m})
	return m
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() any { return fn })
}

// CounterFunc registers a counter whose value is read at export time —
// the bridge for subsystems that already keep their own tallies.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() any { return fn })
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels, func() any {
		up := append([]float64(nil), buckets...)
		sort.Float64s(up)
		return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
	})
	return m.(*Histogram)
}

// WritePrometheus renders every metric in text exposition format (0.0.4),
// families sorted by name and series by label signature, so output is
// deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, name string, s *series) {
	switch m := s.metric.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(float64(m.Value())))
	case *Gauge:
		fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(m.Value()))
	case func() float64:
		fmt.Fprintf(w, "%s%s %s\n", name, s.labels, fmtFloat(m()))
	case *Histogram:
		var run uint64
		for i, up := range m.upper {
			run += m.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", fmtFloat(up)), run)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), m.Count())
		fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fmtFloat(m.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, m.Count())
	}
}

// renderLabels formats {k="v",...}; an empty set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one more label to a pre-rendered label set.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// fmtFloat renders a float the way Prometheus does: shortest form, +Inf
// spelled out.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
